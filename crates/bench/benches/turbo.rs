//! Scaling benchmark of the turbo kernel: 10k / 100k / 1M peers on the
//! `K = 32` churn regime, against the event kernel where byte-parity
//! baselines exist.
//!
//! The canonical machine-readable numbers live in `BENCH_PR3.json`
//! (regenerate with `cargo run --release --bin bench_report`); this target
//! tracks the same workload under Criterion so `cargo bench` surfaces
//! regressions. The 1M-peer case runs turbo only — the point of that size
//! is *that it completes* within memory, which the parity kernels' per-run
//! reallocation makes needlessly painful to iterate on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pieceset::{PieceId, PieceSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::policy::RandomUseful;
use swarm::sim::{AgentConfig, AgentSwarm, KernelKind, SimScratch};
use swarm::SwarmParams;

const K: usize = 32;

/// The `bench_report` workload: arrivals missing exactly one piece,
/// hit-and-run seeds (γ = 200), Section VIII-C retry speed-up η = 10.
fn churn_params(n: usize) -> SwarmParams {
    let full = PieceSet::full(K);
    let lambda_total = n as f64 / 10.0;
    let mut builder = SwarmParams::builder(K)
        .seed_rate(1.0)
        .contact_rate(0.1)
        .seed_departure_rate(200.0);
    for i in 0..K {
        builder = builder.arrival(full.without(PieceId::new(i)), lambda_total / K as f64);
    }
    builder.build().expect("valid parameters")
}

fn initial(n: usize) -> Vec<PieceSet> {
    let full = PieceSet::full(K);
    (0..n).map(|i| full.without(PieceId::new(i % K))).collect()
}

fn sim(kernel: KernelKind, n: usize) -> AgentSwarm {
    AgentSwarm::with_config(
        churn_params(n),
        AgentConfig {
            kernel,
            retry_speedup: 10.0,
            snapshot_interval: 0.25,
            ..Default::default()
        },
        Box::new(RandomUseful),
    )
    .expect("valid configuration")
}

/// Turbo vs. event kernel at 10k and 100k peers (the `BENCH_PR3.json`
/// comparison, tracked over time).
fn turbo_vs_event(c: &mut Criterion) {
    for (peers, horizon) in [(10_000usize, 4.0f64), (100_000, 1.0)] {
        let name = format!("turbo_churn_{peers}_peers");
        let mut group = c.benchmark_group(&name);
        let initial = initial(peers);
        for (name, kernel) in [
            ("event-driven", KernelKind::EventDriven),
            ("turbo", KernelKind::Turbo),
        ] {
            group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |b, &kernel| {
                let sim = sim(kernel, peers);
                let mut scratch = SimScratch::new();
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    let result = sim
                        .run_with_scratch(&initial, &[], horizon, &mut rng, &mut scratch)
                        .expect("valid run");
                    let events = result.events;
                    scratch.recycle(result);
                    events
                });
            });
        }
        group.finish();
    }
}

/// The million-peer horizon: turbo only, scratch-warm, completing a short
/// horizon without reallocating the 1M-row peer table per iteration.
fn turbo_million_peers(c: &mut Criterion) {
    let peers = 1_000_000;
    let initial = initial(peers);
    let sim = sim(KernelKind::Turbo, peers);
    let mut scratch = SimScratch::new();
    c.bench_function("turbo_1M_peers_horizon_0.25", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let result = sim
                .run_with_scratch(&initial, &[], 0.25, &mut rng, &mut scratch)
                .expect("valid run");
            let events = result.events;
            scratch.recycle(result);
            events
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = turbo_vs_event, turbo_million_peers
}
criterion_main!(benches);
