//! Regenerates experiment `stability_region` (see DESIGN.md §4 / EXPERIMENTS.md) and
//! tracks its runtime at a reduced scale.

use bench::{measured_config, print_report, report_config};
use criterion::{criterion_group, criterion_main, Criterion};
use workload::experiments;

fn bench(c: &mut Criterion) {
    print_report(&experiments::stability_region(&report_config()));
    let config = measured_config();
    c.bench_function("experiment_stability_region_small", |b| {
        b.iter(|| experiments::stability_region(&config));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
