//! Scaling benchmark of the network-coded kernel: the Theorem 15 gift
//! workload over GF(2), `K = 32`, at 10k and 100k peers, plus a small-field
//! vs large-field comparison at fixed size.
//!
//! The canonical machine-readable numbers live in `BENCH_PR4.json`
//! (regenerate with `cargo run --release --bin bench_report`); this target
//! tracks the same workload under Criterion so `cargo bench` surfaces
//! regressions in the RREF reduce/absorb hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pieceset::{PieceId, PieceSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::coded::CodedParams;
use swarm::sim::{AgentConfig, AgentSwarm, KernelKind, SimScratch};

const K: usize = 32;

/// The `bench_report` coded workload: gift fraction 0.5 over GF(q),
/// hit-and-run seeds (γ = 200), contact rate 0.1, arrivals at `n / 10`.
fn coded_sim(q: u64, n: usize) -> AgentSwarm {
    let lambda_total = n as f64 / 10.0;
    let params = CodedParams::gift_example(K, q, lambda_total, 0.5, 1.0, 0.1, 200.0)
        .expect("valid coded parameters");
    AgentSwarm::with_coded(
        params,
        AgentConfig {
            kernel: KernelKind::Coded,
            snapshot_interval: 0.25,
            ..Default::default()
        },
    )
    .expect("valid configuration")
}

/// `n` initial peers one dimension short of decoding (the coded analogue of
/// the uncoded benches' one-piece-short population).
fn initial(n: usize) -> Vec<PieceSet> {
    let full = PieceSet::full(K);
    (0..n).map(|i| full.without(PieceId::new(i % K))).collect()
}

/// Coded kernel at 10k and 100k peers over GF(2).
fn coded_scaling(c: &mut Criterion) {
    for (peers, horizon) in [(10_000usize, 4.0f64), (100_000, 1.0)] {
        let name = format!("coded_gift_{peers}_peers");
        let mut group = c.benchmark_group(&name);
        let initial = initial(peers);
        group.bench_with_input(BenchmarkId::from_parameter("gf2"), &peers, |b, &peers| {
            let sim = coded_sim(2, peers);
            let mut scratch = SimScratch::new();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let result = sim
                    .run_with_scratch(&initial, &[], horizon, &mut rng, &mut scratch)
                    .expect("valid run");
                let events = result.events;
                scratch.recycle(result);
                events
            });
        });
        group.finish();
    }
}

/// Field-order sweep at fixed size: GF(2) vs GF(16) vs GF(256) — larger
/// fields buy sharper thresholds at the cost of wider field arithmetic.
fn coded_field_orders(c: &mut Criterion) {
    let peers = 10_000;
    let horizon = 2.0;
    let initial = initial(peers);
    let mut group = c.benchmark_group("coded_gift_field_orders");
    for q in [2u64, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            let sim = coded_sim(q, peers);
            let mut scratch = SimScratch::new();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let result = sim
                    .run_with_scratch(&initial, &[], horizon, &mut rng, &mut scratch)
                    .expect("valid run");
                let events = result.events;
                scratch.recycle(result);
                events
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = coded_scaling, coded_field_orders
}
criterion_main!(benches);
