//! Throughput benchmarks of the two simulation engines: events per second of
//! the type-count CTMC simulator and of the peer-level (agent-based)
//! simulator, as a function of the population size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pieceset::PieceId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::sim::{AgentConfig, AgentSwarm};
use swarm::{policy, SwarmModel, SwarmParams};

fn params(k: usize) -> SwarmParams {
    SwarmParams::builder(k)
        .seed_rate(1.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(2.0)
        .build()
        .expect("valid parameters")
}

fn ctmc_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc_simulator_events");
    for &club in &[50u32, 200, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(club), &club, |b, &club| {
            let model = SwarmModel::new(params(3));
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let initial = model.one_club_state(PieceId::new(0), club);
                let sim = markov::Simulator::new(&model).observe(|s| s.total_peers() as f64);
                sim.run(initial, markov::StopRule::after_events(5_000), &mut rng)
            });
        });
    }
    group.finish();
}

fn agent_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_simulator_horizon50");
    for &club in &[50usize, 200, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(club), &club, |b, &club| {
            let sim = AgentSwarm::with_config(
                params(4),
                AgentConfig { snapshot_interval: 10.0, ..Default::default() },
                Box::new(policy::RandomUseful),
            )
            .expect("valid configuration");
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                sim.run_from_one_club(club, 50.0, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ctmc_engine, agent_engine
}
criterion_main!(benches);
