//! Throughput benchmarks of the Monte-Carlo replication engine: batch
//! wall-clock versus worker count and replication budget, plus the
//! underlying single-replication simulators for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{EngineConfig, Scenario, Session, Workload};
use pieceset::PieceId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::sim::{AgentConfig, AgentSwarm};
use swarm::{policy, SwarmModel, SwarmParams};

fn params(k: usize) -> SwarmParams {
    SwarmParams::builder(k)
        .seed_rate(1.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(2.0)
        .build()
        .expect("valid parameters")
}

/// A small boundary-straddling scenario set (stable, near-critical,
/// transient), the shape every phase-diagram cell batch takes.
fn scenario_set() -> Vec<Scenario> {
    [0.5, 0.95, 2.0]
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let p = SwarmParams::builder(2)
                .seed_rate(1.0)
                .contact_rate(1.0)
                .seed_departure_rate(2.0)
                .fresh_arrivals(load * 2.0)
                .build()
                .expect("valid parameters");
            Scenario::new(i as u64, format!("load={load}"), p)
        })
        .collect()
}

fn engine_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch_16rep_horizon200");
    for &jobs in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let session = Session::builder()
                .config(
                    EngineConfig::default()
                        .with_replications(16)
                        .with_horizon(200.0)
                        .with_master_seed(7)
                        .with_jobs(jobs),
                )
                .workload(Workload::ctmc(scenario_set()))
                .build()
                .expect("valid session");
            b.iter(|| session.run());
        });
    }
    group.finish();
}

fn engine_replication_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_replications_horizon200");
    for &replications in &[4u32, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(replications),
            &replications,
            |b, &replications| {
                let session = Session::builder()
                    .config(
                        EngineConfig::default()
                            .with_replications(replications)
                            .with_horizon(200.0)
                            .with_master_seed(7)
                            .with_jobs(0),
                    )
                    .workload(Workload::ctmc(scenario_set()))
                    .build()
                    .expect("valid session");
                b.iter(|| session.run());
            },
        );
    }
    group.finish();
}

fn ctmc_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc_simulator_events");
    for &club in &[50u32, 200, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(club), &club, |b, &club| {
            let model = SwarmModel::new(params(3));
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let initial = model.one_club_state(PieceId::new(0), club);
                let sim = markov::Simulator::new(&model).observe(|s| s.total_peers() as f64);
                sim.run(initial, markov::StopRule::after_events(5_000), &mut rng)
            });
        });
    }
    group.finish();
}

fn agent_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_simulator_horizon50");
    for &club in &[50usize, 200, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(club), &club, |b, &club| {
            let sim = AgentSwarm::with_config(
                params(4),
                AgentConfig {
                    snapshot_interval: 10.0,
                    ..Default::default()
                },
                Box::new(policy::RandomUseful),
            )
            .expect("valid configuration");
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                sim.run_from_one_club(club, 50.0, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_batch, engine_replication_scaling, ctmc_engine, agent_engine
}
criterion_main!(benches);
