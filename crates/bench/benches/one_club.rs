//! Regenerates experiment `one_club_growth` (see DESIGN.md §4 / EXPERIMENTS.md) and
//! tracks its runtime at a reduced scale.

use bench::{measured_config, print_report, report_config};
use criterion::{criterion_group, criterion_main, Criterion};
use workload::experiments;

fn bench(c: &mut Criterion) {
    print_report(&experiments::one_club_growth(&report_config()));
    let config = measured_config();
    c.bench_function("experiment_one_club_growth_small", |b| {
        b.iter(|| experiments::one_club_growth(&config));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
