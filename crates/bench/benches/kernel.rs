//! Head-to-head benchmark of the two agent-simulator kernels on the
//! large-swarm regime the stability claims are actually about: a 5000-peer,
//! `K = 32` swarm with Fig.-2 snapshot resolution.
//!
//! The event-driven kernel keeps the group decomposition, seed membership,
//! and arrival weights as maintained aggregates (packed `u64`-word bitsets,
//! `O(1)` snapshots, popcount-select departures); the legacy scan kernel
//! reclassifies every peer at each snapshot, allocates per arrival, and
//! falls back to an `O(n)` scan when sampling a departing seed. Both consume
//! identical random draws, so the comparison is purely bookkeeping cost —
//! the trajectories are equal (asserted once before measuring).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pieceset::{PieceId, PieceSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::policy::RandomUseful;
use swarm::sim::{AgentConfig, AgentSwarm, KernelKind};
use swarm::SwarmParams;

const K: usize = 32;

/// A sustained big-swarm workload: arrivals missing exactly one piece keep a
/// multi-thousand-peer population exchanging pieces, with enough turnover
/// that seeds exist but stay rare (the departure-sampling worst case for the
/// scan kernel).
fn big_params(lambda_total: f64) -> SwarmParams {
    let full = PieceSet::full(K);
    let mut builder = SwarmParams::builder(K)
        .seed_rate(1.0)
        .contact_rate(0.2)
        .seed_departure_rate(8.0);
    for i in 0..K {
        builder = builder.arrival(full.without(PieceId::new(i)), lambda_total / K as f64);
    }
    builder.build().expect("valid parameters")
}

/// 5000 initial peers, each missing one piece (spread round-robin), so the
/// swarm starts at operating size instead of filling up first.
fn big_initial() -> Vec<PieceSet> {
    let full = PieceSet::full(K);
    (0..5_000)
        .map(|i| full.without(PieceId::new(i % K)))
        .collect()
}

fn sim(kernel: KernelKind, snapshot_interval: f64, params: SwarmParams) -> AgentSwarm {
    AgentSwarm::with_config(
        params,
        AgentConfig {
            kernel,
            snapshot_interval,
            ..Default::default()
        },
        Box::new(RandomUseful),
    )
    .expect("valid configuration")
}

/// The headline comparison: 5k peers, K = 32, snapshots every 0.25 time
/// units (the resolution a Fig.-2 decomposition plot needs).
fn kernel_5k_peers_k32(c: &mut Criterion) {
    let params = big_params(1_000.0);
    let initial = big_initial();

    // Same seed, same draws: assert trajectory equality once, then measure.
    let mut rng = StdRng::seed_from_u64(7);
    let event = sim(KernelKind::EventDriven, 0.25, params.clone()).run(&initial, 2.0, &mut rng);
    let mut rng = StdRng::seed_from_u64(7);
    let scan = sim(KernelKind::LegacyScan, 0.25, params.clone()).run(&initial, 2.0, &mut rng);
    assert_eq!(event, scan, "kernels must walk identical trajectories");

    let mut group = c.benchmark_group("kernel_5k_peers_k32_horizon10");
    for (name, kernel) in [
        ("event-driven", KernelKind::EventDriven),
        ("legacy-scan", KernelKind::LegacyScan),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |b, &kernel| {
            let sim = sim(kernel, 0.25, params.clone());
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                sim.run(&initial, 10.0, &mut rng)
            });
        });
    }
    group.finish();
}

/// The one-club regime of the Fig.-2 experiments: a 5000-peer one club
/// against a weak fixed seed, where the scan kernel's snapshot reclassifies
/// 5000 peers per grid point.
fn kernel_one_club_5k(c: &mut Criterion) {
    let mut builder = SwarmParams::builder(K)
        .seed_rate(0.5)
        .contact_rate(1.0)
        .seed_departure_rate(4.0);
    builder = builder.arrival(PieceSet::empty(), 2.0);
    let params = builder.build().expect("valid parameters");

    let mut group = c.benchmark_group("kernel_one_club_5k_horizon5");
    for (name, kernel) in [
        ("event-driven", KernelKind::EventDriven),
        ("legacy-scan", KernelKind::LegacyScan),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |b, &kernel| {
            let sim = sim(kernel, 0.1, params.clone());
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(11);
                sim.run_from_one_club(5_000, 5.0, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = kernel_5k_peers_k32, kernel_one_club_5k
}
criterion_main!(benches);
