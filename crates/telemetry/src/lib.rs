//! Zero-cost-when-disabled instrumentation for the simulation engine.
//!
//! The crate provides three primitives:
//!
//! * [`Counter`] / [`CounterSet`] — a fixed, engine-wide taxonomy of
//!   monotonic event counters with O(1) array-indexed accumulation,
//! * [`Histogram`] — a log2-bucketed histogram (bucket = bit width of the
//!   recorded value) for latencies and occupancies of unknown magnitude,
//! * [`Span`] — a monotonic wall-clock span timer, the single clock behind
//!   every `wall_seconds` / `events_per_sec` figure in the workspace.
//!
//! Instrumented code is generic over the [`Recorder`] trait. The default
//! [`NullRecorder`] has empty `#[inline(always)]` methods and
//! `ENABLED = false`, so the disabled path monomorphizes to nothing — no
//! branches, no loads — in kernel hot loops. [`CounterRecorder`] is the
//! enabled implementation, accumulating into a [`CounterSet`].
//!
//! **Determinism contract:** recorders only observe; they never consume
//! randomness or perturb control flow. A metered run must produce results
//! byte-identical to an unmetered one.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

// ---------------------------------------------------------------------
// Counter taxonomy
// ---------------------------------------------------------------------

/// The engine-wide counter taxonomy.
///
/// The first three partition the event stream exactly:
/// `events == Arrivals + Contacts + DepartureEvents`, and every contact is
/// classified: `Contacts == UsefulTransfers + UselessContacts`. The rest
/// expose kernel-specific hot-path work (alias rebuilds, pool churn,
/// rejection retries, RREF absorbs, dimension-cache behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Fresh-peer arrival events handled.
    Arrivals,
    /// Contact events handled (seed ticks + peer ticks).
    Contacts,
    /// Seed-departure events handled (including no-op ones).
    DepartureEvents,
    /// Peers that actually left the swarm (completions and seed exits).
    Departures,
    /// Contacts that moved a piece (or coded dimension) to the target.
    UsefulTransfers,
    /// Contacts that moved nothing: empty swarm, no useful piece, or a
    /// coded combination already inside the target's subspace.
    UselessContacts,
    /// Arrival-sampler / alias-table (re)builds.
    AliasRebuilds,
    /// Swap-remove pool insertions and removals (turbo boosted/seed pools,
    /// coded seed pool).
    PoolOps,
    /// Rejection-sampling iterations beyond the first (uploader draws,
    /// departure probes, coded useful-row retries).
    RejectionRetries,
    /// RREF `absorb` calls in the coded kernel.
    RrefAbsorbs,
    /// `absorb` calls that increased the subspace dimension.
    RankIncreases,
    /// Coded contacts decided from cached dimensions alone (no row built).
    DimFastPathHits,
    /// Coded rows actually materialized (random combinations built).
    BasisMaterializations,
}

impl Counter {
    /// Number of counters in the taxonomy.
    pub const COUNT: usize = 13;

    /// All counters, in declaration (serialization) order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Arrivals,
        Counter::Contacts,
        Counter::DepartureEvents,
        Counter::Departures,
        Counter::UsefulTransfers,
        Counter::UselessContacts,
        Counter::AliasRebuilds,
        Counter::PoolOps,
        Counter::RejectionRetries,
        Counter::RrefAbsorbs,
        Counter::RankIncreases,
        Counter::DimFastPathHits,
        Counter::BasisMaterializations,
    ];

    /// The counter's stable snake_case name, used as its NDJSON/JSON key.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::Arrivals => "arrivals",
            Counter::Contacts => "contacts",
            Counter::DepartureEvents => "departure_events",
            Counter::Departures => "departures",
            Counter::UsefulTransfers => "useful_transfers",
            Counter::UselessContacts => "useless_contacts",
            Counter::AliasRebuilds => "alias_rebuilds",
            Counter::PoolOps => "pool_ops",
            Counter::RejectionRetries => "rejection_retries",
            Counter::RrefAbsorbs => "rref_absorbs",
            Counter::RankIncreases => "rank_increases",
            Counter::DimFastPathHits => "dim_fast_path_hits",
            Counter::BasisMaterializations => "basis_materializations",
        }
    }
}

/// A full set of counter values: one `u64` per [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSet {
    counts: [u64; Counter::COUNT],
}

impl CounterSet {
    /// An all-zero counter set.
    pub const fn new() -> Self {
        CounterSet {
            counts: [0; Counter::COUNT],
        }
    }

    /// Current value of one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counts[counter as usize]
    }

    /// Add `n` to one counter.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.counts[counter as usize] += n;
    }

    /// Add one to one counter.
    #[inline]
    pub fn incr(&mut self, counter: Counter) {
        self.counts[counter as usize] += 1;
    }

    /// Element-wise accumulate another set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            *into += *from;
        }
    }

    /// Iterate `(counter, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Sum of the three event-partition counters; equals the kernel's
    /// reported event total when instrumentation is placed correctly.
    pub fn event_total(&self) -> u64 {
        self.get(Counter::Arrivals)
            + self.get(Counter::Contacts)
            + self.get(Counter::DepartureEvents)
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

/// The instrumentation hook threaded through kernel hot loops.
///
/// Implementations must be pure observers: no randomness, no effect on the
/// instrumented computation. Code paths may consult
/// [`Recorder::ENABLED`] to skip *preparing* expensive measurements, but the
/// measured computation itself must be identical either way.
pub trait Recorder {
    /// `false` for the no-op recorder; lets callers skip measurement setup.
    const ENABLED: bool;

    /// Add one to a counter.
    fn incr(&mut self, counter: Counter);

    /// Add `n` to a counter.
    fn add(&mut self, counter: Counter, n: u64);
}

/// The disabled recorder: every method is an empty `#[inline(always)]`
/// body, so instrumented generic code monomorphizes to the uninstrumented
/// machine code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn incr(&mut self, _counter: Counter) {}

    #[inline(always)]
    fn add(&mut self, _counter: Counter, _n: u64) {}
}

/// The enabled recorder: accumulates into a [`CounterSet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterRecorder {
    /// The accumulated counters.
    pub counters: CounterSet,
}

impl CounterRecorder {
    /// A fresh recorder with all counters at zero.
    pub const fn new() -> Self {
        CounterRecorder {
            counters: CounterSet::new(),
        }
    }
}

impl Recorder for CounterRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn incr(&mut self, counter: Counter) {
        self.counters.incr(counter);
    }

    #[inline]
    fn add(&mut self, counter: Counter, n: u64) {
        self.counters.add(counter, n);
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Number of buckets in a [`Histogram`]: bucket 0 holds the value 0, bucket
/// `b >= 1` holds values of bit width `b`, i.e. `2^(b-1) ..= 2^b - 1`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// The bucket of a value is its bit width (`0` for the value 0), so the
/// full `u64` range fits in [`HISTOGRAM_BUCKETS`] buckets and recording is
/// a single `leading_zeros` plus an array increment. Alongside the buckets
/// the histogram tracks exact `count`, `sum`, and `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value lands in: its bit width.
    #[inline]
    pub const fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` value range of a bucket index.
    pub const fn bucket_bounds(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 0)
        } else {
            (
                1u64 << (index - 1),
                (1u64 << (index - 1)) - 1 + (1u64 << (index - 1)),
            )
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterate the non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Element-wise accumulate another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (into, from) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *into += *from;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

// ---------------------------------------------------------------------
// Span timer
// ---------------------------------------------------------------------

/// A monotonic wall-clock span: the single timing primitive behind every
/// `wall_seconds` figure in the workspace.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    start: Instant,
}

impl Span {
    /// Start a span now.
    pub fn start() -> Self {
        Span {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since the span started.
    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Whole nanoseconds elapsed since the span started (saturating at
    /// `u64::MAX`, ~584 years).
    pub fn nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Time a closure, returning its result and the elapsed seconds.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let span = Span::start();
        let value = f();
        (value, span.seconds())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), Counter::COUNT);
        assert_eq!(names[0], "arrivals");
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "discriminants must be dense");
        }
    }

    #[test]
    fn counter_set_accumulates_and_merges() {
        let mut a = CounterSet::new();
        a.incr(Counter::Contacts);
        a.add(Counter::Contacts, 4);
        a.incr(Counter::Arrivals);
        let mut b = CounterSet::new();
        b.add(Counter::Contacts, 10);
        b.incr(Counter::DepartureEvents);
        a.merge(&b);
        assert_eq!(a.get(Counter::Contacts), 15);
        assert_eq!(a.event_total(), 1 + 15 + 1);
        assert_eq!(a.iter().map(|(_, v)| v).sum::<u64>(), 17);
    }

    #[test]
    fn null_recorder_is_disabled_and_counter_recorder_counts() {
        const { assert!(!NullRecorder::ENABLED) };
        const { assert!(CounterRecorder::ENABLED) };
        let mut null = NullRecorder;
        null.incr(Counter::Arrivals);
        null.add(Counter::Arrivals, 7);
        let mut rec = CounterRecorder::new();
        rec.incr(Counter::Arrivals);
        rec.add(Counter::PoolOps, 3);
        assert_eq!(rec.counters.get(Counter::Arrivals), 1);
        assert_eq!(rec.counters.get(Counter::PoolOps), 3);
    }

    #[test]
    fn histogram_tracks_count_sum_max_and_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        // 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1000 -> 10; MAX -> 64.
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1), (64, 1)]
        );
    }

    #[test]
    fn histogram_merge_matches_recording_everything_into_one() {
        let values_a = [5u64, 9, 0, 77];
        let values_b = [1u64, 1 << 40, 3];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in values_a {
            a.record(v);
            all.record(v);
        }
        for v in values_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn span_reports_monotonic_nonnegative_time() {
        let span = Span::start();
        let (sum, seconds) = Span::time(|| (0..1000u64).sum::<u64>());
        assert_eq!(sum, 499_500);
        assert!(seconds >= 0.0);
        assert!(span.seconds() >= 0.0);
        assert!(span.nanos() < u64::MAX);
    }
}
