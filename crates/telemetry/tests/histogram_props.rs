//! Property tests of the log2 histogram's bucket geometry: every value
//! lands in exactly one bucket, bucket bounds partition the `u64` range,
//! and boundary values sit on the correct side.

use proptest::prelude::*;
use telemetry::{Histogram, HISTOGRAM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_lands_inside_its_buckets_bounds(value in any::<u64>()) {
        let index = Histogram::bucket_index(value);
        prop_assert!(index < HISTOGRAM_BUCKETS);
        let (low, high) = Histogram::bucket_bounds(index);
        prop_assert!(low <= value && value <= high,
            "value {value} outside bucket {index} = [{low}, {high}]");
    }

    #[test]
    fn recording_increments_exactly_one_bucket(value in any::<u64>()) {
        let mut h = Histogram::new();
        h.record(value);
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        prop_assert_eq!(buckets, vec![(Histogram::bucket_index(value), 1)]);
        prop_assert_eq!(h.count(), 1);
        prop_assert_eq!(h.sum(), value);
        prop_assert_eq!(h.max(), value);
    }

    #[test]
    fn powers_of_two_open_a_fresh_bucket(shift in 0u32..64) {
        // 2^s is the smallest value of bit width s+1: it must start bucket
        // s+1, while 2^s - 1 must close bucket s.
        let power = 1u64 << shift;
        prop_assert_eq!(Histogram::bucket_index(power), shift as usize + 1);
        prop_assert_eq!(Histogram::bucket_bounds(shift as usize + 1).0, power);
        prop_assert_eq!(Histogram::bucket_index(power - 1), u64::BITS as usize - (power - 1).leading_zeros() as usize);
        if shift > 0 {
            prop_assert_eq!(Histogram::bucket_bounds(shift as usize).1, power - 1);
        }
    }
}

#[test]
fn bucket_bounds_partition_the_u64_range() {
    // Consecutive buckets tile 0..=u64::MAX with no gaps or overlaps.
    assert_eq!(Histogram::bucket_bounds(0), (0, 0));
    let mut expected_low = 1u64;
    for index in 1..HISTOGRAM_BUCKETS {
        let (low, high) = Histogram::bucket_bounds(index);
        assert_eq!(low, expected_low, "bucket {index} low");
        assert_eq!(high, low - 1 + low, "bucket {index} high");
        if index < HISTOGRAM_BUCKETS - 1 {
            expected_low = high + 1;
        } else {
            assert_eq!(high, u64::MAX);
        }
    }
}
