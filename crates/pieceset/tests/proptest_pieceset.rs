//! Property-based tests for the piece-set algebra.

use pieceset::{PieceId, PieceSet, TypeSpace, MAX_PIECES};
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = PieceSet> {
    any::<u64>().prop_map(PieceSet::from_bits)
}

fn arb_small_set(k: usize) -> impl Strategy<Value = PieceSet> {
    let mask = if k == MAX_PIECES {
        u64::MAX
    } else {
        (1u64 << k) - 1
    };
    any::<u64>().prop_map(move |b| PieceSet::from_bits(b & mask))
}

proptest! {
    #[test]
    fn union_is_commutative_and_associative(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
    }

    #[test]
    fn intersection_is_commutative_and_associative(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.intersection(b).intersection(c), a.intersection(b.intersection(c)));
    }

    #[test]
    fn distributive_laws(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.intersection(b.union(c)), a.intersection(b).union(a.intersection(c)));
        prop_assert_eq!(a.union(b.intersection(c)), a.union(b).intersection(a.union(c)));
    }

    #[test]
    fn difference_relations(a in arb_set(), b in arb_set()) {
        let d = a.difference(b);
        prop_assert!(d.is_subset_of(a));
        prop_assert!(d.intersection(b).is_empty());
        prop_assert_eq!(d.union(a.intersection(b)), a);
        // |a - b| + |a ∩ b| = |a|
        prop_assert_eq!(d.len() + a.intersection(b).len(), a.len());
    }

    #[test]
    fn subset_iff_difference_empty(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.is_subset_of(b), a.difference(b).is_empty());
        prop_assert_eq!(b.can_help(a), !b.is_subset_of(a));
    }

    #[test]
    fn inclusion_exclusion_cardinality(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.union(b).len() + a.intersection(b).len(), a.len() + b.len());
    }

    #[test]
    fn insert_then_remove_restores(a in arb_set(), idx in 0usize..MAX_PIECES) {
        let p = PieceId::new(idx);
        if !a.contains(p) {
            let mut s = a;
            s.insert(p);
            prop_assert_eq!(s.len(), a.len() + 1);
            s.remove(p);
            prop_assert_eq!(s, a);
        }
    }

    #[test]
    fn iteration_reconstructs_set(a in arb_set()) {
        let rebuilt: PieceSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
        prop_assert_eq!(a.iter().count(), a.len());
    }

    #[test]
    fn complement_partitions_full(k in 1usize..=16, raw in any::<u64>()) {
        let a = PieceSet::from_bits(raw & ((1u64 << k) - 1));
        let comp = a.complement(k);
        prop_assert!(comp.intersection(a).is_empty());
        prop_assert_eq!(comp.union(a), PieceSet::full(k));
        prop_assert_eq!(comp.len() + a.len(), k);
    }

    #[test]
    fn type_space_index_bijection(k in 1usize..=12, raw in any::<u64>()) {
        let space = TypeSpace::new(k).unwrap();
        let mask = (1u64 << k) - 1;
        let c = PieceSet::from_bits(raw & mask);
        let idx = space.index_of(c);
        prop_assert!(idx.value() < space.num_types());
        prop_assert_eq!(space.type_at(idx), c);
    }

    #[test]
    fn subsets_iter_yields_exactly_subsets(k in 1usize..=10, raw in any::<u64>()) {
        let space = TypeSpace::new(k).unwrap();
        let c = PieceSet::from_bits(raw & ((1u64 << k) - 1));
        let subs: Vec<PieceSet> = space.subsets_of(c).collect();
        prop_assert_eq!(subs.len(), 1usize << c.len());
        for s in &subs {
            prop_assert!(s.is_subset_of(c));
        }
        // no duplicates
        let mut sorted = subs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), subs.len());
    }

    #[test]
    fn helpers_partition(k in 1usize..=8, raw in any::<u64>()) {
        let space = TypeSpace::new(k).unwrap();
        let c = PieceSet::from_bits(raw & ((1u64 << k) - 1));
        let helpers = space.helpers_of(c).count();
        let subsets = space.subsets_of(c).count();
        prop_assert_eq!(helpers + subsets, space.num_types());
    }

    #[test]
    fn small_set_respects_bound(k in 1usize..=MAX_PIECES, s in arb_small_set(8)) {
        let _ = k;
        prop_assert!(s.is_subset_of(PieceSet::full(8)));
    }
}

// --- WordBits::select_nth edge cases --------------------------------------

use pieceset::WordBits;

proptest! {
    #[test]
    fn select_nth_on_empty_set_is_none(len in 0usize..300, rank in 0usize..64) {
        let s = WordBits::with_len(len);
        prop_assert_eq!(s.select_nth(rank), None);
    }

    #[test]
    fn select_nth_on_all_ones(len in 1usize..300, rank_seed in any::<u64>()) {
        // A fully populated range: rank r selects index r, the top rank
        // (count - 1) selects the last index, and count is out of range.
        let mut s = WordBits::with_len(len);
        for i in 0..len {
            s.insert(i);
        }
        prop_assert_eq!(s.count(), len);
        let rank = (rank_seed as usize) % len;
        prop_assert_eq!(s.select_nth(rank), Some(rank));
        prop_assert_eq!(s.select_nth(len - 1), Some(len - 1));
        prop_assert_eq!(s.select_nth(len), None);
    }

    #[test]
    fn select_nth_matches_iteration_after_swap_bit_churn(
        members in proptest::collection::vec(0usize..256, 0..40),
        churn in proptest::collection::vec((0usize..256, 0usize..256), 0..40),
    ) {
        // Mirror the simulator's departure pattern: arbitrary swap_bit moves
        // (swap-remove companions) must keep rank selection consistent with
        // in-order iteration, including the top rank `count - 1`.
        let mut s = WordBits::with_len(256);
        for &m in &members {
            s.insert(m);
        }
        for &(to, from) in &churn {
            s.swap_bit(to, from);
        }
        let in_order: Vec<usize> = s.iter().collect();
        prop_assert_eq!(s.count(), in_order.len());
        for (rank, &member) in in_order.iter().enumerate() {
            prop_assert_eq!(s.select_nth(rank), Some(member));
        }
        if let Some(&last) = in_order.last() {
            prop_assert_eq!(s.select_nth(s.count() - 1), Some(last));
        }
        prop_assert_eq!(s.select_nth(s.count()), None);
    }
}
