//! Growable packed `u64`-word bitsets over arbitrary indices.
//!
//! [`WordBits`] is the index-set companion of [`crate::PieceSet`]: where a
//! `PieceSet` is one word describing which of at most [`crate::MAX_PIECES`]
//! pieces a peer holds, a `WordBits` packs *any* number of indices — peers in
//! a population, pieces of a very large file — into `⌈n/64⌉` words. The
//! agent-based simulator keys its hot membership queries off it: "which peers
//! are seeds right now" and "which peers run a boosted retry clock" are
//! `WordBits` over peer indices, so membership tests are one mask, updates
//! are one mask, and *select the `r`-th member in index order* is a popcount
//! skip over words instead of an `O(n)` scan of the population.
//!
//! All queries are allocation-free.
//!
//! # Examples
//!
//! ```
//! use pieceset::WordBits;
//!
//! let mut seeds = WordBits::new();
//! seeds.grow(200);          // population of 200 peers, none a seed yet
//! seeds.insert(3);
//! seeds.insert(130);
//! seeds.insert(64);
//! assert_eq!(seeds.count(), 3);
//! // the 1st member in increasing index order (0-based rank):
//! assert_eq!(seeds.select_nth(1), Some(64));
//! assert!(seeds.contains(130));
//! seeds.remove(64);
//! assert_eq!(seeds.select_nth(1), Some(130));
//! ```

/// A growable bitset packed into `u64` words, with constant-time membership
/// updates and popcount-accelerated rank selection.
///
/// Indices are `usize` and dense: the set is meant to track membership within
/// a population `0..len` (peers, pieces, replications). The member count is
/// maintained incrementally so [`WordBits::count`] is `O(1)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WordBits {
    words: Vec<u64>,
    /// Number of indices currently in the set, maintained on every update.
    count: usize,
}

impl WordBits {
    /// Creates an empty set over an empty index range.
    #[must_use]
    pub fn new() -> Self {
        WordBits::default()
    }

    /// Creates an empty set sized for indices `0..len`.
    #[must_use]
    pub fn with_len(len: usize) -> Self {
        WordBits {
            words: vec![0; len.div_ceil(64)],
            count: 0,
        }
    }

    /// Ensures indices `0..len` are addressable (new indices start absent).
    pub fn grow(&mut self, len: usize) {
        let words = len.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// Number of members in the set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Returns `true` if the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns `true` if `index` is a member. Indices beyond the grown range
    /// are absent (never out of bounds).
    #[must_use]
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1u64 << (index % 64)) != 0)
    }

    /// Inserts `index`; returns `true` if it was newly added. Grows the
    /// backing storage if needed.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        self.grow(index + 1);
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        let newly = *word & bit == 0;
        *word |= bit;
        self.count += usize::from(newly);
        newly
    }

    /// Removes `index`; returns `true` if it was a member.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        let Some(word) = self.words.get_mut(index / 64) else {
            return false;
        };
        let bit = 1u64 << (index % 64);
        let had = *word & bit != 0;
        *word &= !bit;
        self.count -= usize::from(had);
        had
    }

    /// Sets membership of `index` to `member` (a branchless insert/remove).
    pub fn set(&mut self, index: usize, member: bool) {
        if member {
            self.insert(index);
        } else {
            self.remove(index);
        }
    }

    /// Moves the membership bit of `from` onto `to` and clears `from` — the
    /// companion of `Vec::swap_remove(to)` with `from` the last index.
    pub fn swap_bit(&mut self, to: usize, from: usize) {
        if to != from {
            let member = self.contains(from);
            self.set(to, member);
        }
        self.remove(from);
    }

    /// Removes every member (keeps the grown capacity).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// The `rank`-th member in increasing index order (0-based), or `None`
    /// if fewer than `rank + 1` members exist.
    ///
    /// Runs in `O(words)` by skipping whole words via popcount, then isolates
    /// the bit inside the hit word — the replacement for "collect all members
    /// into a `Vec` and index it".
    #[must_use]
    pub fn select_nth(&self, rank: usize) -> Option<usize> {
        if rank >= self.count {
            return None;
        }
        let mut remaining = rank;
        for (w, &word) in self.words.iter().enumerate() {
            let ones = word.count_ones() as usize;
            if remaining < ones {
                // Drop the `remaining` lowest set bits, then read the next.
                let mut bits = word;
                for _ in 0..remaining {
                    bits &= bits - 1;
                }
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            remaining -= ones;
        }
        None
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + i)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_count() {
        let mut s = WordBits::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert_eq!(s.count(), 3);
        assert!(s.contains(5) && s.contains(64) && s.contains(129));
        assert!(!s.contains(6));
        assert!(!s.contains(10_000), "past-capacity queries are absent");
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.remove(10_000));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn select_nth_matches_sorted_members() {
        let mut s = WordBits::with_len(300);
        let members = [0usize, 1, 63, 64, 65, 127, 128, 200, 299];
        for &m in &members {
            s.insert(m);
        }
        for (rank, &m) in members.iter().enumerate() {
            assert_eq!(s.select_nth(rank), Some(m), "rank {rank}");
        }
        assert_eq!(s.select_nth(members.len()), None);
        assert_eq!(WordBits::new().select_nth(0), None);
    }

    #[test]
    fn iter_is_increasing_and_complete() {
        let mut s = WordBits::new();
        for m in [3usize, 70, 71, 140] {
            s.insert(m);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![3, 70, 71, 140]);
    }

    #[test]
    fn swap_bit_mirrors_swap_remove() {
        // Population [a, b, c, d]; seeds = {1, 3}. swap_remove(1) moves d to
        // slot 1: seeds should become {1} (d was a member).
        let mut s = WordBits::with_len(4);
        s.insert(1);
        s.insert(3);
        s.swap_bit(1, 3);
        assert!(s.contains(1));
        assert!(!s.contains(3));
        assert_eq!(s.count(), 1);
        // Removing the last element itself: membership just drops.
        let mut s = WordBits::with_len(2);
        s.insert(1);
        s.swap_bit(1, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn clear_and_set() {
        let mut s = WordBits::with_len(70);
        s.set(69, true);
        assert!(s.contains(69));
        s.set(69, false);
        assert!(!s.contains(69));
        s.set(1, true);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(1));
    }
}
