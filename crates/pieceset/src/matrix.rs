//! A packed peer × piece bit matrix: every peer's piece collection stored as
//! a row of `u64` words.
//!
//! The agent-based simulator keeps thousands of peers, each holding a subset
//! of the file's `K` pieces. [`PieceMatrix`] backs those collections with one
//! flat `Vec<u64>` — `⌈K/64⌉` words per peer, rows contiguous — so the hot
//! queries of the event kernel (does the uploader hold anything the target
//! lacks? how many pieces does a peer still need? which is the `n`-th useful
//! piece?) are word-wise mask/popcount operations with **no allocation and no
//! pointer chasing**, and a departing peer is a `swap_remove` of one row.
//!
//! Rows are addressed by index; the matrix does not know what a row *means*
//! (the simulator keeps its per-peer metadata in parallel arrays). For files
//! of at most [`crate::MAX_PIECES`] pieces a row converts losslessly to a
//! [`PieceSet`]; wider files stay in multi-word form.
//!
//! # Examples
//!
//! ```
//! use pieceset::{PieceMatrix, PieceSet, PieceId};
//!
//! let mut m = PieceMatrix::new(5);
//! let a = m.push_set(PieceSet::from_pieces([PieceId::new(0), PieceId::new(3)]));
//! let b = m.push_set(PieceSet::empty());
//! assert_eq!(m.count(a), 2);
//! // pieces `a` could usefully upload to `b`:
//! assert_eq!(m.useful_count(a, b), 2);
//! assert_eq!(m.useful_select(a, b, 1), Some(PieceId::new(3)));
//! m.insert(b, PieceId::new(3));
//! assert_eq!(m.useful_count(a, b), 1);
//! ```

use crate::{PieceId, PieceSet};

/// Packed piece collections for a population of peers: one row of
/// `⌈K/64⌉` `u64` words per peer (see the crate docs for the design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PieceMatrix {
    num_pieces: usize,
    words_per_row: usize,
    /// Mask of valid bits in the last word of a row.
    last_word_mask: u64,
    data: Vec<u64>,
}

impl PieceMatrix {
    /// Creates an empty matrix for a `K = num_pieces` file.
    ///
    /// # Panics
    ///
    /// Panics if `num_pieces` is zero.
    #[must_use]
    pub fn new(num_pieces: usize) -> Self {
        assert!(num_pieces >= 1, "a file must have at least one piece");
        let words_per_row = num_pieces.div_ceil(64);
        let tail = num_pieces % 64;
        PieceMatrix {
            num_pieces,
            words_per_row,
            last_word_mask: if tail == 0 {
                u64::MAX
            } else {
                (1u64 << tail) - 1
            },
            data: Vec::new(),
        }
    }

    /// Reserves capacity for `rows` additional peers.
    pub fn reserve(&mut self, rows: usize) {
        self.data.reserve(rows * self.words_per_row);
    }

    /// Reconfigures the matrix for a (possibly different) `K`-piece file and
    /// removes every row, keeping the allocated capacity — the scratch-reuse
    /// companion of [`PieceMatrix::new`] for simulators that run many
    /// replications back to back.
    ///
    /// # Panics
    ///
    /// Panics if `num_pieces` is zero.
    pub fn reset(&mut self, num_pieces: usize) {
        assert!(num_pieces >= 1, "a file must have at least one piece");
        let tail = num_pieces % 64;
        self.num_pieces = num_pieces;
        self.words_per_row = num_pieces.div_ceil(64);
        self.last_word_mask = if tail == 0 {
            u64::MAX
        } else {
            (1u64 << tail) - 1
        };
        self.data.clear();
    }

    /// Number of pieces `K` (the row width in bits).
    #[must_use]
    pub fn num_pieces(&self) -> usize {
        self.num_pieces
    }

    /// Number of rows (peers) currently stored.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len() / self.words_per_row
    }

    /// Number of `u64` words backing each row.
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    #[inline]
    fn row(&self, row: usize) -> &[u64] {
        let start = row * self.words_per_row;
        &self.data[start..start + self.words_per_row]
    }

    #[inline]
    fn row_mut(&mut self, row: usize) -> &mut [u64] {
        let start = row * self.words_per_row;
        &mut self.data[start..start + self.words_per_row]
    }

    /// Appends an empty row and returns its index.
    pub fn push_empty(&mut self) -> usize {
        self.data.resize(self.data.len() + self.words_per_row, 0);
        self.rows() - 1
    }

    /// Appends a row holding the pieces of `set` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `set` uses pieces outside `0..K`.
    pub fn push_set(&mut self, set: PieceSet) -> usize {
        debug_assert!(
            self.num_pieces >= 64 || set.bits() >> self.num_pieces == 0,
            "set {set} uses pieces outside a {}-piece file",
            self.num_pieces
        );
        let row = self.push_empty();
        self.row_mut(row)[0] = set.bits();
        row
    }

    /// Removes `row` by swapping the last row into its place (the order of
    /// the remaining rows is preserved except for that move), mirroring
    /// `Vec::swap_remove`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn swap_remove_row(&mut self, row: usize) {
        let rows = self.rows();
        assert!(row < rows, "row {row} out of range ({rows} rows)");
        let w = self.words_per_row;
        let (dst, src) = (row * w, (rows - 1) * w);
        if dst != src {
            for i in 0..w {
                self.data[dst + i] = self.data[src + i];
            }
        }
        self.data.truncate(src);
    }

    /// Returns `true` if `row` holds `piece`.
    #[must_use]
    #[inline]
    pub fn contains(&self, row: usize, piece: PieceId) -> bool {
        let i = piece.index();
        self.row(row)[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Gives `piece` to `row`; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, row: usize, piece: PieceId) -> bool {
        let i = piece.index();
        debug_assert!(i < self.num_pieces, "piece {piece} outside the file");
        let word = &mut self.row_mut(row)[i / 64];
        let bit = 1u64 << (i % 64);
        let newly = *word & bit == 0;
        *word |= bit;
        newly
    }

    /// Number of pieces `row` holds (one popcount per word, no allocation).
    #[must_use]
    #[inline]
    pub fn count(&self, row: usize) -> usize {
        self.row(row).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if `row` holds the complete `K`-piece collection.
    #[must_use]
    #[inline]
    pub fn is_full(&self, row: usize) -> bool {
        self.count(row) == self.num_pieces
    }

    /// Number of pieces still missing from `row` (`K − |row|`).
    #[must_use]
    #[inline]
    pub fn missing(&self, row: usize) -> usize {
        self.num_pieces - self.count(row)
    }

    /// Number of pieces row `a` holds that row `b` lacks (`|a − b|`), the
    /// useful-piece count of an `a → b` contact.
    #[must_use]
    #[inline]
    pub fn useful_count(&self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.row(a), self.row(b));
        ra.iter()
            .zip(rb)
            .map(|(x, y)| (x & !y).count_ones() as usize)
            .sum()
    }

    /// The `rank`-th piece (0-based, increasing index order) that row `a`
    /// holds and row `b` lacks, or `None` if fewer exist — uniform
    /// random-useful selection without materialising the difference set.
    #[must_use]
    pub fn useful_select(&self, a: usize, b: usize, rank: usize) -> Option<PieceId> {
        let (ra, rb) = (self.row(a), self.row(b));
        let mut remaining = rank;
        for (w, (x, y)) in ra.iter().zip(rb).enumerate() {
            let mut bits = x & !y;
            let ones = bits.count_ones() as usize;
            if remaining < ones {
                for _ in 0..remaining {
                    bits &= bits - 1;
                }
                return Some(PieceId::new(w * 64 + bits.trailing_zeros() as usize));
            }
            remaining -= ones;
        }
        None
    }

    /// The pieces missing from `row`, as a [`PieceSet`].
    ///
    /// # Panics
    ///
    /// Panics if the file is wider than [`crate::MAX_PIECES`] (the set type's
    /// single-word limit); wide files must stay in multi-word form.
    #[must_use]
    pub fn missing_set(&self, row: usize) -> PieceSet {
        PieceSet::from_bits(!self.as_set(row).bits() & self.last_word_mask)
    }

    /// The difference `a − b` as a [`PieceSet`] (useful pieces of an
    /// `a → b` contact).
    ///
    /// # Panics
    ///
    /// Panics if the file is wider than [`crate::MAX_PIECES`].
    #[must_use]
    #[inline]
    pub fn useful_set(&self, a: usize, b: usize) -> PieceSet {
        self.assert_single_word();
        PieceSet::from_bits(self.row(a)[0] & !self.row(b)[0])
    }

    /// The collection of `row` as a [`PieceSet`].
    ///
    /// # Panics
    ///
    /// Panics if the file is wider than [`crate::MAX_PIECES`].
    #[must_use]
    #[inline]
    pub fn as_set(&self, row: usize) -> PieceSet {
        self.assert_single_word();
        PieceSet::from_bits(self.row(row)[0])
    }

    /// Iterates over the pieces `row` holds, in increasing index order.
    pub fn pieces(&self, row: usize) -> impl Iterator<Item = PieceId> + '_ {
        self.row(row).iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(PieceId::new(w * 64 + i))
                }
            })
        })
    }

    fn assert_single_word(&self) {
        assert!(
            self.words_per_row == 1,
            "a {}-piece file does not fit a single-word PieceSet",
            self.num_pieces
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    #[test]
    fn push_query_round_trip() {
        let mut m = PieceMatrix::new(6);
        let a = m.push_set(set(&[0, 2, 5]));
        assert_eq!(m.rows(), 1);
        assert_eq!(m.count(a), 3);
        assert!(m.contains(a, PieceId::new(2)));
        assert!(!m.contains(a, PieceId::new(1)));
        assert_eq!(m.as_set(a), set(&[0, 2, 5]));
        assert_eq!(m.missing_set(a), set(&[1, 3, 4]));
        assert_eq!(m.missing(a), 3);
        assert!(!m.is_full(a));
    }

    #[test]
    fn insert_and_fullness() {
        let mut m = PieceMatrix::new(2);
        let r = m.push_empty();
        assert!(m.insert(r, PieceId::new(0)));
        assert!(!m.insert(r, PieceId::new(0)));
        assert!(m.insert(r, PieceId::new(1)));
        assert!(m.is_full(r));
        assert_eq!(m.missing(r), 0);
    }

    #[test]
    fn useful_queries_match_set_algebra() {
        let mut m = PieceMatrix::new(8);
        let a = m.push_set(set(&[0, 1, 4, 7]));
        let b = m.push_set(set(&[1, 2, 7]));
        let expected = set(&[0, 4]);
        assert_eq!(m.useful_count(a, b), 2);
        assert_eq!(m.useful_set(a, b), expected);
        assert_eq!(m.useful_select(a, b, 0), Some(PieceId::new(0)));
        assert_eq!(m.useful_select(a, b, 1), Some(PieceId::new(4)));
        assert_eq!(m.useful_select(a, b, 2), None);
    }

    #[test]
    fn multi_word_rows() {
        // 130 pieces → 3 words per row.
        let mut m = PieceMatrix::new(130);
        assert_eq!(m.words_per_row(), 3);
        let a = m.push_empty();
        let b = m.push_empty();
        for i in [0usize, 63, 64, 127, 128, 129] {
            m.insert(a, PieceId::new(i));
        }
        m.insert(b, PieceId::new(64));
        assert_eq!(m.count(a), 6);
        assert_eq!(m.useful_count(a, b), 5);
        assert_eq!(m.useful_select(a, b, 4), Some(PieceId::new(129)));
        let held: Vec<usize> = m.pieces(a).map(PieceId::index).collect();
        assert_eq!(held, vec![0, 63, 64, 127, 128, 129]);
        assert!(!m.is_full(a));
    }

    #[test]
    fn swap_remove_moves_last_row() {
        let mut m = PieceMatrix::new(4);
        let a = m.push_set(set(&[0]));
        let _b = m.push_set(set(&[1]));
        let _c = m.push_set(set(&[2]));
        m.swap_remove_row(a);
        assert_eq!(m.rows(), 2);
        // row 0 is now the old last row
        assert_eq!(m.as_set(0), set(&[2]));
        assert_eq!(m.as_set(1), set(&[1]));
        // removing the (new) last row shrinks without moving anything
        m.swap_remove_row(1);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.as_set(0), set(&[2]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn swap_remove_out_of_range_panics() {
        let mut m = PieceMatrix::new(2);
        m.swap_remove_row(0);
    }

    #[test]
    fn reset_reconfigures_width_and_clears_rows() {
        let mut m = PieceMatrix::new(4);
        m.push_set(set(&[0, 3]));
        m.reset(130);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.num_pieces(), 130);
        assert_eq!(m.words_per_row(), 3);
        let r = m.push_empty();
        m.insert(r, PieceId::new(129));
        assert_eq!(m.count(r), 1);
        m.reset(2);
        assert_eq!(m.words_per_row(), 1);
        let r = m.push_set(set(&[0, 1]));
        assert!(m.is_full(r));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn wide_rows_refuse_single_word_conversion() {
        let mut m = PieceMatrix::new(100);
        let r = m.push_empty();
        let _ = m.as_set(r);
    }
}
