//! Enumeration of the type space `C` (all subsets of `{1..K}`) with a dense
//! canonical index, used by the exact CTMC state vector and the
//! stability-region computations.

use crate::{PieceSet, PieceSetError, MAX_PIECES};
use serde::{Deserialize, Serialize};

/// Maximum `K` for which the full `2^K` type space can be enumerated.
///
/// The exact CTMC state vector and the Lyapunov-function evaluation need to
/// enumerate every type, which is exponential in `K`; 24 keeps this below a
/// few tens of millions of entries.
pub const MAX_ENUMERABLE_PIECES: usize = 24;

/// Dense index of a type within a [`TypeSpace`].
///
/// The canonical index of a type `C` is simply its bitmask interpreted as an
/// integer, so type `∅` has index 0 and the full collection has index
/// `2^K − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TypeIndex(pub usize);

impl TypeIndex {
    /// Returns the underlying dense index.
    #[must_use]
    pub const fn value(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for TypeIndex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

/// The set of all `2^K` peer types for a `K`-piece file.
///
/// Provides a bijection between [`PieceSet`]s (restricted to `K` pieces) and
/// dense indices `0..2^K`, plus convenient iterators over all types, all
/// strict subsets of a type, and all strict supersets.
///
/// # Examples
///
/// ```
/// use pieceset::{TypeSpace, PieceSet};
/// let space = TypeSpace::new(3).unwrap();
/// assert_eq!(space.num_types(), 8);
/// let full = space.full_type();
/// assert_eq!(space.index_of(full).value(), 7);
/// assert_eq!(space.type_at(space.index_of(full)), full);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeSpace {
    num_pieces: usize,
}

impl TypeSpace {
    /// Creates the type space for a `K = num_pieces` file.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_pieces` is zero or larger than
    /// [`MAX_ENUMERABLE_PIECES`].
    pub fn new(num_pieces: usize) -> Result<Self, PieceSetError> {
        if num_pieces == 0 {
            return Err(PieceSetError::ZeroPieces);
        }
        if num_pieces > MAX_ENUMERABLE_PIECES || num_pieces > MAX_PIECES {
            return Err(PieceSetError::TooManyPieces {
                requested: num_pieces,
            });
        }
        Ok(TypeSpace { num_pieces })
    }

    /// Number of pieces `K`.
    #[must_use]
    pub const fn num_pieces(&self) -> usize {
        self.num_pieces
    }

    /// Number of types, `2^K`.
    #[must_use]
    pub const fn num_types(&self) -> usize {
        1usize << self.num_pieces
    }

    /// The empty type `∅`.
    #[must_use]
    pub const fn empty_type(&self) -> PieceSet {
        PieceSet::empty()
    }

    /// The full collection `F = {1..K}` (the peer-seed type).
    #[must_use]
    pub fn full_type(&self) -> PieceSet {
        PieceSet::full(self.num_pieces)
    }

    /// Returns `true` if the given set only uses pieces `< K`.
    #[must_use]
    pub fn contains_type(&self, set: PieceSet) -> bool {
        set.is_subset_of(self.full_type())
    }

    /// Canonical dense index of a type.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `set` uses pieces outside this space.
    #[must_use]
    pub fn index_of(&self, set: PieceSet) -> TypeIndex {
        debug_assert!(
            self.contains_type(set),
            "type {set} not in a {}-piece space",
            self.num_pieces
        );
        TypeIndex(set.bits() as usize)
    }

    /// The type at a canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn type_at(&self, index: TypeIndex) -> PieceSet {
        assert!(
            index.0 < self.num_types(),
            "type index {} out of range",
            index.0
        );
        PieceSet::from_bits(index.0 as u64)
    }

    /// Iterates over every type, in canonical index order (`∅` first, `F` last).
    pub fn iter(&self) -> impl Iterator<Item = PieceSet> + '_ {
        (0..self.num_types()).map(|bits| PieceSet::from_bits(bits as u64))
    }

    /// Iterates over every type except the full collection `F`.
    pub fn iter_non_full(&self) -> impl Iterator<Item = PieceSet> + '_ {
        let full = self.full_type();
        self.iter().filter(move |&c| c != full)
    }

    /// Iterates over all subsets of `of` (including `∅` and `of` itself).
    ///
    /// This is the set `E_C = {C' : C' ⊆ C}` from the paper's Lyapunov
    /// function — the types that are, or can become, type `of` peers.
    #[must_use]
    pub fn subsets_of(&self, of: PieceSet) -> SubsetsIter {
        SubsetsIter::new(of)
    }

    /// Iterates over all types *not* contained in `of` (i.e. `H_C`): the types
    /// that can help a type-`of` peer.
    pub fn helpers_of(&self, of: PieceSet) -> impl Iterator<Item = PieceSet> + '_ {
        self.iter().filter(move |c| !c.is_subset_of(of))
    }

    /// Iterates over the types with exactly `K − 1` pieces (`F − {k}`); these
    /// are the "one club" candidate types of the missing-piece syndrome.
    pub fn one_club_types(&self) -> impl Iterator<Item = PieceSet> + '_ {
        let full = self.full_type();
        full.iter().map(move |k| full.without(k))
    }
}

/// Iterator over all subsets of a given [`PieceSet`].
///
/// Uses the standard sub-mask enumeration trick; yields `2^|C|` sets,
/// starting with `C` itself and ending with `∅`.
#[derive(Debug, Clone)]
pub struct SubsetsIter {
    mask: u64,
    current: u64,
    done: bool,
}

impl SubsetsIter {
    fn new(of: PieceSet) -> Self {
        SubsetsIter {
            mask: of.bits(),
            current: of.bits(),
            done: false,
        }
    }
}

impl Iterator for SubsetsIter {
    type Item = PieceSet;

    fn next(&mut self) -> Option<PieceSet> {
        if self.done {
            return None;
        }
        let out = PieceSet::from_bits(self.current);
        if self.current == 0 {
            self.done = true;
        } else {
            self.current = (self.current - 1) & self.mask;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PieceId;

    #[test]
    fn new_rejects_bad_sizes() {
        assert!(TypeSpace::new(0).is_err());
        assert!(TypeSpace::new(MAX_ENUMERABLE_PIECES + 1).is_err());
        assert!(TypeSpace::new(1).is_ok());
        assert!(TypeSpace::new(MAX_ENUMERABLE_PIECES).is_ok());
    }

    #[test]
    fn num_types_is_power_of_two() {
        let space = TypeSpace::new(5).unwrap();
        assert_eq!(space.num_types(), 32);
        assert_eq!(space.iter().count(), 32);
    }

    #[test]
    fn index_round_trip() {
        let space = TypeSpace::new(4).unwrap();
        for c in space.iter() {
            assert_eq!(space.type_at(space.index_of(c)), c);
        }
    }

    #[test]
    fn empty_and_full_indices() {
        let space = TypeSpace::new(3).unwrap();
        assert_eq!(space.index_of(space.empty_type()).value(), 0);
        assert_eq!(space.index_of(space.full_type()).value(), 7);
    }

    #[test]
    fn subsets_of_counts() {
        let space = TypeSpace::new(5).unwrap();
        let c = PieceSet::from_pieces([PieceId::new(0), PieceId::new(2), PieceId::new(4)]);
        let subs: Vec<PieceSet> = space.subsets_of(c).collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&PieceSet::empty()));
        assert!(subs.contains(&c));
        for s in subs {
            assert!(s.is_subset_of(c));
        }
    }

    #[test]
    fn helpers_are_exactly_non_subsets() {
        let space = TypeSpace::new(4).unwrap();
        let c = PieceSet::from_pieces([PieceId::new(0)]);
        let helpers: Vec<PieceSet> = space.helpers_of(c).collect();
        // Non-subsets of a 1-element set in a 16-type space: 16 - 2 = 14.
        assert_eq!(helpers.len(), 14);
        for h in helpers {
            assert!(h.can_help(c));
        }
    }

    #[test]
    fn one_club_types_have_k_minus_one_pieces() {
        let space = TypeSpace::new(4).unwrap();
        let clubs: Vec<PieceSet> = space.one_club_types().collect();
        assert_eq!(clubs.len(), 4);
        for c in clubs {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn single_piece_space() {
        let space = TypeSpace::new(1).unwrap();
        assert_eq!(space.num_types(), 2);
        let clubs: Vec<PieceSet> = space.one_club_types().collect();
        assert_eq!(clubs, vec![PieceSet::empty()]);
    }
}
