//! Single-piece identifiers.

use serde::{Deserialize, Serialize};

/// Identifier of a single piece of the shared file.
///
/// Pieces are indexed from `0` to `K - 1` internally. The paper numbers pieces
/// `1..=K`; [`PieceId::paper_number`] converts to that convention for display.
///
/// # Examples
///
/// ```
/// use pieceset::PieceId;
/// let p = PieceId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.paper_number(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PieceId(u32);

impl PieceId {
    /// Creates a new piece identifier from a 0-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32` (practically unreachable
    /// because [`crate::MAX_PIECES`] is far smaller).
    #[must_use]
    pub fn new(index: usize) -> Self {
        PieceId(u32::try_from(index).expect("piece index fits in u32"))
    }

    /// Returns the 0-based index of the piece.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the 1-based number used in the paper's notation (`1..=K`).
    #[must_use]
    pub fn paper_number(self) -> usize {
        self.0 as usize + 1
    }
}

impl core::fmt::Display for PieceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "piece {}", self.paper_number())
    }
}

impl From<usize> for PieceId {
    fn from(index: usize) -> Self {
        PieceId::new(index)
    }
}

impl From<PieceId> for usize {
    fn from(piece: PieceId) -> usize {
        piece.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 5, 63] {
            assert_eq!(PieceId::new(i).index(), i);
        }
    }

    #[test]
    fn paper_number_is_one_based() {
        assert_eq!(PieceId::new(0).paper_number(), 1);
        assert_eq!(PieceId::new(7).paper_number(), 8);
    }

    #[test]
    fn display_uses_paper_numbering() {
        assert_eq!(PieceId::new(2).to_string(), "piece 3");
    }

    #[test]
    fn conversions() {
        let p: PieceId = 4usize.into();
        assert_eq!(usize::from(p), 4);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PieceId::new(1) < PieceId::new(2));
        assert_eq!(PieceId::new(3), PieceId::new(3));
    }
}
