//! Bitset representation of a peer type (set of held pieces).

use crate::{PieceId, PieceSetError};
use serde::{Deserialize, Serialize};

/// Maximum number of pieces supported by [`PieceSet`].
pub const MAX_PIECES: usize = 64;

/// A set of pieces, i.e. the *type* of a peer in the Zhu–Hajek model.
///
/// Backed by a `u64` bitmask, so it supports files of up to [`MAX_PIECES`]
/// pieces. The empty set corresponds to a newly-arrived peer with no pieces;
/// the full set (of size `K`) corresponds to a peer seed.
///
/// `PieceSet` is deliberately *not* tied to a specific `K`: set algebra is
/// defined on raw bitmasks and the caller provides `K` where needed (e.g.
/// [`PieceSet::full`], [`PieceSet::complement`]). The model layer validates
/// that all sets fit within its `K`.
///
/// # Examples
///
/// ```
/// use pieceset::{PieceSet, PieceId};
///
/// let mut c = PieceSet::empty();
/// c.insert(PieceId::new(1));
/// c.insert(PieceId::new(3));
/// assert_eq!(c.len(), 2);
///
/// let full = PieceSet::full(4);
/// // useful pieces a full seed could upload to `c`:
/// let useful = full.difference(c);
/// assert_eq!(useful.len(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PieceSet(u64);

impl PieceSet {
    /// The empty set (a peer holding no pieces).
    #[must_use]
    pub const fn empty() -> Self {
        PieceSet(0)
    }

    /// The full collection `{1, …, K}` for a `K`-piece file (a peer seed).
    ///
    /// # Panics
    ///
    /// Panics if `num_pieces` is zero or exceeds [`MAX_PIECES`].
    #[must_use]
    pub fn full(num_pieces: usize) -> Self {
        assert!(num_pieces >= 1, "a file must have at least one piece");
        assert!(
            num_pieces <= MAX_PIECES,
            "at most {MAX_PIECES} pieces are supported"
        );
        if num_pieces == MAX_PIECES {
            PieceSet(u64::MAX)
        } else {
            PieceSet((1u64 << num_pieces) - 1)
        }
    }

    /// Fallible counterpart of [`PieceSet::full`].
    ///
    /// # Errors
    ///
    /// Returns [`PieceSetError::ZeroPieces`] or [`PieceSetError::TooManyPieces`].
    pub fn try_full(num_pieces: usize) -> Result<Self, PieceSetError> {
        if num_pieces == 0 {
            return Err(PieceSetError::ZeroPieces);
        }
        if num_pieces > MAX_PIECES {
            return Err(PieceSetError::TooManyPieces {
                requested: num_pieces,
            });
        }
        Ok(Self::full(num_pieces))
    }

    /// Builds a set from an iterator of pieces.
    #[must_use]
    pub fn from_pieces<I: IntoIterator<Item = PieceId>>(pieces: I) -> Self {
        let mut s = PieceSet::empty();
        for p in pieces {
            s.insert(p);
        }
        s
    }

    /// Builds a set from a raw bitmask. Bit `i` set means piece `i` is held.
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        PieceSet(bits)
    }

    /// Returns the raw bitmask.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds a singleton set `{piece}`.
    #[must_use]
    pub fn singleton(piece: PieceId) -> Self {
        let mut s = PieceSet::empty();
        s.insert(piece);
        s
    }

    /// Number of pieces in the set (`|C|` in the paper).
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set holds no pieces.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the set equals the full collection of a `num_pieces` file.
    #[must_use]
    pub fn is_full(self, num_pieces: usize) -> bool {
        self == PieceSet::full(num_pieces)
    }

    /// Returns `true` if `piece` is held.
    #[must_use]
    pub fn contains(self, piece: PieceId) -> bool {
        debug_assert!(piece.index() < MAX_PIECES);
        self.0 & (1u64 << piece.index()) != 0
    }

    /// Inserts `piece` into the set; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `piece.index() >= MAX_PIECES`.
    pub fn insert(&mut self, piece: PieceId) -> bool {
        assert!(piece.index() < MAX_PIECES, "piece index exceeds MAX_PIECES");
        let bit = 1u64 << piece.index();
        let newly = self.0 & bit == 0;
        self.0 |= bit;
        newly
    }

    /// Removes `piece` from the set; returns `true` if it was present.
    pub fn remove(&mut self, piece: PieceId) -> bool {
        let bit = 1u64 << piece.index();
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// Returns a copy of this set with `piece` added (`C ∪ {i}`).
    #[must_use]
    pub fn with(self, piece: PieceId) -> Self {
        let mut s = self;
        s.insert(piece);
        s
    }

    /// Returns a copy of this set with `piece` removed (`C − {i}`).
    #[must_use]
    pub fn without(self, piece: PieceId) -> Self {
        let mut s = self;
        s.remove(piece);
        s
    }

    /// Set union `self ∪ other`.
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        PieceSet(self.0 | other.0)
    }

    /// Set intersection `self ∩ other`.
    #[must_use]
    pub const fn intersection(self, other: Self) -> Self {
        PieceSet(self.0 & other.0)
    }

    /// Set difference `self − other`: the pieces `self` has that `other` lacks.
    ///
    /// In the model this is exactly the set of pieces a type-`self` peer could
    /// usefully upload to a type-`other` peer.
    #[must_use]
    pub const fn difference(self, other: Self) -> Self {
        PieceSet(self.0 & !other.0)
    }

    /// Complement within a `num_pieces` file: the pieces still needed.
    #[must_use]
    pub fn complement(self, num_pieces: usize) -> Self {
        PieceSet::full(num_pieces).difference(self)
    }

    /// Returns `true` if `self ⊆ other`.
    #[must_use]
    pub const fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` if `self ⊇ other`.
    #[must_use]
    pub const fn is_superset_of(self, other: Self) -> bool {
        other.is_subset_of(self)
    }

    /// Returns `true` if `self ⊊ other` (strict subset).
    #[must_use]
    pub fn is_strict_subset_of(self, other: Self) -> bool {
        self.is_subset_of(other) && self != other
    }

    /// Returns `true` if a type-`self` peer can help a type-`other` peer,
    /// i.e. `self ⊄ other` — `self` holds at least one piece `other` lacks.
    #[must_use]
    pub fn can_help(self, other: Self) -> bool {
        !self.is_subset_of(other)
    }

    /// Number of pieces `self` has that `other` lacks (`|self − other|`).
    #[must_use]
    pub const fn useful_count_for(self, other: Self) -> usize {
        self.difference(other).len()
    }

    /// Iterates over the held pieces in increasing index order.
    pub fn iter(self) -> PieceSetIter {
        PieceSetIter { bits: self.0 }
    }

    /// Returns the held piece with the smallest index, if any.
    #[must_use]
    pub fn first(self) -> Option<PieceId> {
        if self.0 == 0 {
            None
        } else {
            Some(PieceId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Formats the set using the paper's `{i, j, …}` notation (1-based).
    #[must_use]
    pub fn paper_notation(self) -> String {
        if self.is_empty() {
            return "∅".to_owned();
        }
        let inner: Vec<String> = self.iter().map(|p| p.paper_number().to_string()).collect();
        format!("{{{}}}", inner.join(","))
    }
}

impl core::fmt::Display for PieceSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.paper_notation())
    }
}

impl FromIterator<PieceId> for PieceSet {
    fn from_iter<I: IntoIterator<Item = PieceId>>(iter: I) -> Self {
        PieceSet::from_pieces(iter)
    }
}

impl Extend<PieceId> for PieceSet {
    fn extend<I: IntoIterator<Item = PieceId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for PieceSet {
    type Item = PieceId;
    type IntoIter = PieceSetIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the pieces of a [`PieceSet`], in increasing index order.
#[derive(Debug, Clone)]
pub struct PieceSetIter {
    bits: u64,
}

impl Iterator for PieceSetIter {
    type Item = PieceId;

    fn next(&mut self) -> Option<PieceId> {
        if self.bits == 0 {
            None
        } else {
            let idx = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(PieceId::new(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PieceSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(indices: &[usize]) -> PieceSet {
        PieceSet::from_pieces(indices.iter().map(|&i| PieceId::new(i)))
    }

    #[test]
    fn empty_set_properties() {
        let e = PieceSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.paper_notation(), "∅");
    }

    #[test]
    fn full_set_has_k_pieces() {
        for k in 1..=MAX_PIECES {
            assert_eq!(PieceSet::full(k).len(), k);
        }
    }

    #[test]
    fn try_full_rejects_bad_sizes() {
        assert_eq!(PieceSet::try_full(0), Err(PieceSetError::ZeroPieces));
        assert_eq!(
            PieceSet::try_full(MAX_PIECES + 1),
            Err(PieceSetError::TooManyPieces {
                requested: MAX_PIECES + 1
            })
        );
        assert!(PieceSet::try_full(MAX_PIECES).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one piece")]
    fn full_panics_on_zero() {
        let _ = PieceSet::full(0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = PieceSet::empty();
        assert!(s.insert(PieceId::new(3)));
        assert!(!s.insert(PieceId::new(3)));
        assert!(s.contains(PieceId::new(3)));
        assert!(!s.contains(PieceId::new(2)));
        assert!(s.remove(PieceId::new(3)));
        assert!(!s.remove(PieceId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn with_without_are_pure() {
        let s = set(&[0, 2]);
        let t = s.with(PieceId::new(1));
        assert_eq!(s.len(), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.without(PieceId::new(1)), s);
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        assert_eq!(a.union(b), set(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(b), set(&[2]));
        assert_eq!(a.difference(b), set(&[0, 1]));
        assert_eq!(b.difference(a), set(&[3]));
    }

    #[test]
    fn subset_and_help_relations() {
        let a = set(&[0, 1]);
        let b = set(&[0, 1, 2]);
        assert!(a.is_subset_of(b));
        assert!(a.is_strict_subset_of(b));
        assert!(b.is_superset_of(a));
        assert!(!b.is_subset_of(a));
        // b can help a (it has piece 2), a cannot help b.
        assert!(b.can_help(a));
        assert!(!a.can_help(b));
        assert_eq!(b.useful_count_for(a), 1);
        assert_eq!(a.useful_count_for(b), 0);
    }

    #[test]
    fn complement_is_needed_pieces() {
        let c = set(&[1]);
        let needed = c.complement(3);
        assert_eq!(needed, set(&[0, 2]));
        assert_eq!(PieceSet::full(3).complement(3), PieceSet::empty());
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = set(&[5, 1, 3]);
        let got: Vec<usize> = s.iter().map(PieceId::index).collect();
        assert_eq!(got, vec![1, 3, 5]);
        assert_eq!(s.first(), Some(PieceId::new(1)));
    }

    #[test]
    fn paper_notation_formatting() {
        assert_eq!(set(&[0, 2]).paper_notation(), "{1,3}");
        assert_eq!(set(&[0, 2]).to_string(), "{1,3}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: PieceSet = [PieceId::new(0), PieceId::new(4)].into_iter().collect();
        assert_eq!(s.len(), 2);
        let mut t = PieceSet::empty();
        t.extend(s);
        assert_eq!(t, s);
    }

    #[test]
    fn max_piece_index_supported() {
        let mut s = PieceSet::empty();
        s.insert(PieceId::new(MAX_PIECES - 1));
        assert!(s.contains(PieceId::new(MAX_PIECES - 1)));
        assert!(s.is_subset_of(PieceSet::full(MAX_PIECES)));
    }
}
