//! Compact piece-subset types for the peer-to-peer stability model.
//!
//! In the model of Zhu & Hajek (PODC 2011) a file is divided into `K` pieces
//! and a peer's *type* is the subset of pieces it currently holds. This crate
//! provides:
//!
//! * [`PieceId`] — a newtype for a single piece index (0-based internally,
//!   pieces are numbered `1..=K` in the paper),
//! * [`PieceSet`] — a bitset over at most [`MAX_PIECES`] pieces with the set
//!   algebra used throughout the model (useful pieces, subset tests, …),
//! * [`TypeSpace`] — an enumeration of all `2^K` types with a canonical dense
//!   index, used by the exact CTMC state vector and by the stability-region
//!   computations,
//! * [`WordBits`] — a growable packed `u64`-word bitset over arbitrary
//!   indices (peers of a population, pieces of a very wide file) with
//!   popcount-accelerated rank selection, backing the event-driven
//!   simulator's seed / boosted membership sets,
//! * [`PieceMatrix`] — every peer's piece collection as one row of packed
//!   `u64` words in a single flat buffer, so the simulator's hot queries
//!   (useful-piece counts, n-th useful piece, fullness) are allocation-free
//!   mask/popcount operations.
//!
//! # Examples
//!
//! ```
//! use pieceset::{PieceSet, PieceId};
//!
//! let full = PieceSet::full(4);
//! let holder = PieceSet::from_pieces([PieceId::new(0), PieceId::new(2)]);
//! // pieces the holder still needs:
//! let needed = full.difference(holder);
//! assert_eq!(needed.len(), 2);
//! assert!(needed.contains(PieceId::new(1)));
//! assert!(!holder.is_superset_of(full));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod enumerate;
mod matrix;
mod piece;
mod set;
mod words;

pub use enumerate::{SubsetsIter, TypeIndex, TypeSpace, MAX_ENUMERABLE_PIECES};
pub use matrix::PieceMatrix;
pub use piece::PieceId;
pub use set::{PieceSet, PieceSetIter, MAX_PIECES};
pub use words::WordBits;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PieceSetError {
    /// A piece index was at least the number of pieces `K` in context.
    PieceOutOfRange {
        /// The offending piece index.
        piece: usize,
        /// The number of pieces in the file.
        num_pieces: usize,
    },
    /// The requested number of pieces exceeds [`MAX_PIECES`].
    TooManyPieces {
        /// The requested `K`.
        requested: usize,
    },
    /// `K` must be at least one.
    ZeroPieces,
}

impl core::fmt::Display for PieceSetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PieceSetError::PieceOutOfRange { piece, num_pieces } => {
                write!(
                    f,
                    "piece index {piece} out of range for a {num_pieces}-piece file"
                )
            }
            PieceSetError::TooManyPieces { requested } => {
                write!(
                    f,
                    "requested {requested} pieces but at most {MAX_PIECES} are supported"
                )
            }
            PieceSetError::ZeroPieces => write!(f, "a file must have at least one piece"),
        }
    }
}

impl std::error::Error for PieceSetError {}
