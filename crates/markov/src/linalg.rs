//! Small dense linear-algebra helpers (no external dependency).
//!
//! The branching-process and stationary-distribution computations need to
//! solve modest dense linear systems (dimension ≤ a few thousand) and to
//! estimate spectral radii. Row-major dense matrices and straightforward
//! Gaussian elimination are more than adequate.

use crate::MarkovError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a nested slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A · x`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, out_i) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *out_i = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Solves `A · x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::SingularMatrix`] if the matrix is (numerically)
    /// singular, or [`MarkovError::DimensionMismatch`] if shapes disagree.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if self.rows != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                got: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                got: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best < 1e-12 {
                return Err(MarkovError::SingularMatrix);
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                x.swap(col, pivot);
            }
            // Eliminate below.
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for k in (col + 1)..n {
                acc -= a[col * n + k] * x[k];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// Estimates the spectral radius of a non-negative matrix by power
    /// iteration.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NoConvergence`] if the iteration does not settle
    /// within `max_iters` iterations (tolerance `1e-10`), and
    /// [`MarkovError::InvalidParameter`] for an empty or non-square matrix.
    pub fn spectral_radius(&self, max_iters: usize) -> Result<f64, MarkovError> {
        if self.rows != self.cols || self.rows == 0 {
            return Err(MarkovError::InvalidParameter(
                "spectral radius needs a non-empty square matrix".into(),
            ));
        }
        let n = self.rows;
        let mut v = vec![1.0 / n as f64; n];
        let mut prev = 0.0;
        for it in 0..max_iters {
            let w = self.mul_vec(&v);
            let norm: f64 = w.iter().map(|x| x.abs()).sum();
            if norm == 0.0 {
                return Ok(0.0);
            }
            let estimate = norm;
            v = w.into_iter().map(|x| x / norm).collect();
            if (estimate - prev).abs() <= 1e-10 * estimate.max(1.0) && it > 2 {
                return Ok(estimate);
            }
            prev = estimate;
        }
        Err(MarkovError::NoConvergence {
            iterations: max_iters,
        })
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(3);
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // first pivot is zero; partial pivoting must handle it
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MarkovError::SingularMatrix));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
        let b = Matrix::identity(2);
        assert!(matches!(
            b.solve(&[1.0]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 0.5;
        a[(1, 1)] = 2.0;
        a[(2, 2)] = 1.0;
        let r = a.spectral_radius(10_000).unwrap();
        assert!((r - 2.0).abs() < 1e-6, "r {r}");
    }

    #[test]
    fn spectral_radius_of_rank_one_branching_matrix() {
        // The ABS offspring matrix in the paper has rank one; e.g. rows
        // [xi*a, a; xi*b, b] has spectral radius xi*a + b.
        let (xi, a_val, b_val) = (0.1, 3.0, 0.6);
        let a = Matrix::from_rows(&[vec![xi * a_val, a_val], vec![xi * b_val, b_val]]);
        let r = a.spectral_radius(10_000).unwrap();
        assert!((r - (xi * a_val + b_val)).abs() < 1e-8, "r {r}");
    }

    #[test]
    fn spectral_radius_zero_matrix() {
        let a = Matrix::zeros(4, 4);
        assert_eq!(a.spectral_radius(100).unwrap(), 0.0);
    }

    #[test]
    fn index_roundtrip() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 7.5;
        assert_eq!(a[(0, 1)], 7.5);
        assert_eq!(a[(1, 0)], 0.0);
    }
}
