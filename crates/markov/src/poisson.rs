//! Sampling helpers for exponential waiting times and Poisson processes.
//!
//! The `rand` crate alone (without `rand_distr`) does not ship an exponential
//! distribution; the model only needs exponential and Poisson-process
//! sampling, both of which are implemented here by inverse transform.

use rand::Rng;

/// Samples an `Exp(rate)` waiting time (mean `1/rate`) by inverse transform.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn sample_exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be positive and finite"
    );
    // Use 1 - u to avoid ln(0); u in [0, 1).
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

/// Samples a `Poisson(mean)` count using Knuth's multiplication method for
/// small means and a normal approximation for large means.
///
/// # Panics
///
/// Panics if `mean` is negative or not finite.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "Poisson mean must be non-negative and finite"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction; adequate for the
        // workload generators where mean is large.
        let z = sample_standard_normal(rng);
        let v = mean + mean.sqrt() * z + 0.5;
        if v < 0.0 {
            0
        } else {
            v.floor() as u64
        }
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Samples the jump times of a rate-`rate` Poisson process on `[0, horizon]`.
///
/// Returns the (sorted) jump times. If `rate == 0.0` the result is empty.
///
/// # Panics
///
/// Panics if `rate` is negative or `horizon` is negative / not finite.
pub fn poisson_process_times<R: Rng + ?Sized>(rng: &mut R, rate: f64, horizon: f64) -> Vec<f64> {
    assert!(
        rate >= 0.0 && rate.is_finite(),
        "rate must be non-negative and finite"
    );
    assert!(
        horizon >= 0.0 && horizon.is_finite(),
        "horizon must be non-negative and finite"
    );
    let mut times = Vec::new();
    if rate == 0.0 {
        return times;
    }
    let mut t = 0.0;
    loop {
        t += sample_exp(rng, rate);
        if t > horizon {
            break;
        }
        times.push(t);
    }
    times
}

/// Precomputed cumulative weights for repeated categorical sampling.
///
/// Construction runs one prefix-sum pass; every
/// [`sample`](CumulativeWeights::sample) then consumes exactly one uniform
/// draw — the same single draw [`sample_weighted_index`] consumes — and
/// resolves it by binary search in `O(log n)` instead of a linear walk.
/// Two samplers built from the *same* weight slice map the same uniform
/// draw to the same index, which is what lets the two draw-compatible
/// simulation kernels share arrival trajectories while only one of them
/// caches the table.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeWeights {
    /// `cum[i] = w_0 + … + w_i` (sequential left-to-right summation).
    cum: Vec<f64>,
    /// The last index with a strictly positive weight (the clamp target for
    /// a draw that rounds past the final prefix sum).
    last_positive: usize,
}

impl CumulativeWeights {
    /// Builds the table. Returns `None` if the weights are empty, contain a
    /// negative or NaN entry, or sum to a non-positive / non-finite total.
    #[must_use]
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.iter().any(|w| w.is_nan() || *w < 0.0) {
            return None;
        }
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            acc += w;
            cum.push(acc);
        }
        if !(acc.is_finite() && acc > 0.0) {
            return None;
        }
        let last_positive = weights.iter().rposition(|&w| w > 0.0)?;
        Some(CumulativeWeights { cum, last_positive })
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Returns `true` if the table holds no categories (never, by
    /// construction — present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// The total weight.
    #[must_use]
    pub fn total(&self) -> f64 {
        *self.cum.last().expect("non-empty by construction")
    }

    /// Draws a category proportionally to the weights from a single uniform
    /// draw, by binary search over the prefix sums. Zero-weight categories
    /// are never returned.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let target = rng.gen::<f64>() * self.total();
        // First index whose prefix sum strictly exceeds the target: a
        // zero-weight category shares its prefix sum with its predecessor,
        // so it can never be the first strict exceeder.
        let idx = self.cum.partition_point(|&c| c <= target);
        idx.min(self.last_positive)
    }
}

/// Samples a categorical index with the given non-negative weights.
///
/// Returns `None` if all weights are zero or the slice is empty.
pub fn sample_weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total.is_nan() || total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point slack: return the last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let rate = 2.5;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_exp(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_exp(&mut rng, 0.0);
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean = 3.0;
        let n = 100_000;
        let avg: f64 = (0..n)
            .map(|_| sample_poisson(&mut rng, mean) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((avg - mean).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = 500.0;
        let n = 20_000;
        let avg: f64 = (0..n)
            .map(|_| sample_poisson(&mut rng, mean) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((avg - mean).abs() < 2.0, "avg {avg}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn poisson_process_count_matches_rate_times_horizon() {
        let mut rng = StdRng::seed_from_u64(6);
        let rate = 4.0;
        let horizon = 1000.0;
        let times = poisson_process_times(&mut rng, rate, horizon);
        let expected = rate * horizon;
        assert!((times.len() as f64 - expected).abs() < 4.0 * expected.sqrt());
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "times sorted");
        assert!(times.iter().all(|&t| t <= horizon));
    }

    #[test]
    fn poisson_process_zero_rate_is_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(poisson_process_times(&mut rng, 0.0, 100.0).is_empty());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(8);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[sample_weighted_index(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_all_zero_returns_none() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(sample_weighted_index(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(sample_weighted_index(&mut rng, &[]), None);
    }

    #[test]
    fn cumulative_weights_reject_degenerate_inputs() {
        assert!(CumulativeWeights::new(&[]).is_none());
        assert!(CumulativeWeights::new(&[0.0, 0.0]).is_none());
        assert!(CumulativeWeights::new(&[1.0, -1.0]).is_none());
        assert!(CumulativeWeights::new(&[f64::NAN]).is_none());
        assert!(CumulativeWeights::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn cumulative_weights_respect_weights_and_skip_zeros() {
        let weights = [0.0, 1.0, 0.0, 3.0, 0.0];
        let table = CumulativeWeights::new(&weights).unwrap();
        assert_eq!(table.len(), 5);
        assert!((table.total() - 4.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counts = [0usize; 5];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0] + counts[2] + counts[4], 0);
        let ratio = counts[3] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn cumulative_weights_match_linear_walk_on_shared_draws() {
        // The binary-search sampler consumes the identical single uniform
        // draw as the linear walk; on a shared stream they must agree (this
        // is the arrival-sampling parity contract between the simulation
        // kernels).
        let weights = [0.5, 0.0, 2.5, 1.0, 0.0, 0.25];
        let table = CumulativeWeights::new(&weights).unwrap();
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..20_000 {
            assert_eq!(
                table.sample(&mut a),
                sample_weighted_index(&mut b, &weights).unwrap()
            );
        }
    }
}
