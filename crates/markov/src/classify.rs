//! Heuristic classification of finite simulated sample paths.
//!
//! A finite simulation cannot *prove* transience or positive recurrence; the
//! experiments instead classify a path as **growing** (consistent with the
//! transient regime of Theorem 1(a), where the population grows linearly at
//! rate ≈ `Δ_{F−{k}}`) or **stable** (consistent with positive recurrence:
//! bounded excursions, frequent returns to a low level). The classifier
//! combines a linear-trend estimate on the tail of the path with a
//! return-frequency statistic, and reports its confidence inputs so callers
//! can inspect borderline outcomes.

use crate::path::ScalarPath;
use serde::{Deserialize, Serialize};

/// Classification outcome for a sample path of the population size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathClass {
    /// The population grows roughly linearly: consistent with transience.
    Growing,
    /// The population keeps returning to a low level: consistent with
    /// positive recurrence.
    Stable,
    /// Neither criterion triggered decisively.
    Indeterminate,
}

/// Detailed classification report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathVerdict {
    /// The headline classification.
    pub class: PathClass,
    /// Estimated tail growth rate (peers per unit time).
    pub tail_slope: f64,
    /// R² of the tail linear fit.
    pub r_squared: f64,
    /// Fraction of time spent at or below the return level.
    pub fraction_low: f64,
    /// Number of upcrossings of the return level.
    pub upcrossings: usize,
    /// Time-average of the observable over the tail window.
    pub tail_average: f64,
    /// Ratio of the tail average to the average over the second quarter of
    /// the window; a value near one indicates a plateau (no sustained
    /// growth), while linear growth from a small start gives roughly 2–3.
    pub growth_ratio: f64,
}

/// Configuration of the [`PathClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathClassifier {
    /// Fraction of the horizon (from the end) used for the trend fit.
    pub tail_fraction: f64,
    /// Slope above which (relative to `slope_scale`) a path is called growing.
    pub growth_slope_threshold: f64,
    /// Natural scale of slopes for the problem (e.g. the theoretical one-club
    /// growth rate, or the total arrival rate). The threshold is
    /// `growth_slope_threshold * slope_scale`.
    pub slope_scale: f64,
    /// Population level counted as "low" for return statistics.
    pub return_level: f64,
    /// Minimum fraction of time at/below `return_level` for a stable verdict.
    pub min_fraction_low: f64,
}

impl Default for PathClassifier {
    fn default() -> Self {
        PathClassifier {
            tail_fraction: 0.5,
            growth_slope_threshold: 0.2,
            slope_scale: 1.0,
            return_level: 30.0,
            min_fraction_low: 0.05,
        }
    }
}

impl PathClassifier {
    /// Creates a classifier with the problem's natural slope scale (e.g. the
    /// total arrival rate `λ_total`) and return level.
    #[must_use]
    pub fn new(slope_scale: f64, return_level: f64) -> Self {
        PathClassifier {
            slope_scale: slope_scale.max(1e-9),
            return_level,
            ..Default::default()
        }
    }

    /// Classifies a sample path of the population size.
    #[must_use]
    pub fn classify(&self, path: &ScalarPath) -> PathVerdict {
        let trend = path.trend(self.tail_fraction);
        let t0 = path.times()[0];
        let t1 = path.end_time();
        let span = t1 - t0;
        let tail_from = t1 - span * self.tail_fraction;
        let tail_average = path.time_average_over(tail_from, t1);
        let fraction_low = path.fraction_at_or_below(self.return_level);
        let upcrossings = path.upcrossings_of(self.return_level);
        // Plateau detection: compare the tail average against the average
        // over the second quarter of the window. A positive-recurrent system
        // settles onto a plateau (ratio ≈ 1) even when its stationary
        // population is far above `return_level`; a transient system keeps
        // climbing (ratio ≈ 2–3 for linear growth from a small start).
        let early_average = path.time_average_over(t0 + 0.25 * span, t0 + 0.5 * span);
        let growth_ratio = if early_average > 1e-9 {
            tail_average / early_average
        } else {
            f64::INFINITY
        };

        let slope_threshold = self.growth_slope_threshold * self.slope_scale;
        let growing = trend.slope > slope_threshold && trend.r_squared > 0.5;
        // A path that keeps visiting the low region, whose tail average is
        // itself low, or that has plateaued, is called stable.
        let stable = !growing
            && trend.slope <= slope_threshold
            && (fraction_low >= self.min_fraction_low
                || tail_average <= self.return_level
                || growth_ratio <= 1.35);

        let class = if growing {
            PathClass::Growing
        } else if stable {
            PathClass::Stable
        } else {
            PathClass::Indeterminate
        };
        PathVerdict {
            class,
            tail_slope: trend.slope,
            r_squared: trend.r_squared,
            fraction_low,
            upcrossings,
            tail_average,
            growth_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_path(slope: f64, horizon: f64) -> ScalarPath {
        let mut p = ScalarPath::new(0.0, 0.0);
        let steps = 200;
        for i in 1..=steps {
            let t = horizon * i as f64 / steps as f64;
            p.record(t, slope * t);
        }
        p.finish(horizon);
        p
    }

    fn bounded_noisy_path(level: f64, horizon: f64) -> ScalarPath {
        let mut p = ScalarPath::new(0.0, 0.0);
        let steps = 400;
        for i in 1..=steps {
            let t = horizon * i as f64 / steps as f64;
            // oscillates between 0 and level
            let v = if i % 2 == 0 { 0.0 } else { level };
            p.record(t, v);
        }
        p.finish(horizon);
        p
    }

    #[test]
    fn growing_path_is_classified_growing() {
        let classifier = PathClassifier::new(1.0, 30.0);
        let verdict = classifier.classify(&linear_path(0.8, 1_000.0));
        assert_eq!(verdict.class, PathClass::Growing);
        assert!(verdict.tail_slope > 0.5);
    }

    #[test]
    fn bounded_path_is_classified_stable() {
        let classifier = PathClassifier::new(1.0, 30.0);
        let verdict = classifier.classify(&bounded_noisy_path(20.0, 1_000.0));
        assert_eq!(verdict.class, PathClass::Stable);
        assert!(verdict.fraction_low > 0.3);
    }

    #[test]
    fn plateau_above_return_level_is_stable() {
        // Constant population of 100 with return level 30: never visits the
        // low region, but the plateau (growth ratio ≈ 1) marks it stable.
        let classifier = PathClassifier::new(1.0, 30.0);
        let mut p = ScalarPath::new(0.0, 100.0);
        p.record(500.0, 100.0);
        p.finish(1_000.0);
        let verdict = classifier.classify(&p);
        assert_eq!(verdict.class, PathClass::Stable);
        assert!((verdict.growth_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_growth_without_good_fit_is_not_stable() {
        // A path that doubles from the second quarter to the tail should not
        // be called stable even if the linear fit is poor.
        let classifier = PathClassifier::new(1000.0, 30.0);
        let mut p = ScalarPath::new(0.0, 0.0);
        for i in 1..=100 {
            let t = 10.0 * i as f64;
            let v = 2.0 * t + if i % 2 == 0 { 300.0 } else { 0.0 };
            p.record(t, v);
        }
        p.finish(1_000.0);
        let verdict = classifier.classify(&p);
        assert_ne!(verdict.class, PathClass::Stable);
        assert!(verdict.growth_ratio > 1.35);
    }

    #[test]
    fn slope_scale_changes_the_verdict() {
        // slope 0.8 is large relative to scale 1 but small relative to 100.
        let strict = PathClassifier::new(1.0, 30.0);
        let lax = PathClassifier::new(100.0, 30.0);
        let path = linear_path(0.8, 1_000.0);
        assert_eq!(strict.classify(&path).class, PathClass::Growing);
        assert_ne!(lax.classify(&path).class, PathClass::Growing);
    }

    #[test]
    fn verdict_reports_upcrossings() {
        let classifier = PathClassifier::new(1.0, 10.0);
        let verdict = classifier.classify(&bounded_noisy_path(20.0, 100.0));
        assert!(verdict.upcrossings > 50);
    }
}
