//! Multi-type branching-process calculations.
//!
//! The transience proof of Theorem 1 (Section VI) couples the original system
//! to an *autonomous branching system* (ABS) whose offspring means form a
//! small matrix. The quantity of interest is one plus the expected total
//! number of descendants of each type, which is finite iff the mean offspring
//! matrix is subcritical, and then equals `(I − M)⁻¹ · 1`.

use crate::linalg::Matrix;
use crate::MarkovError;

/// A multi-type Galton–Watson branching process described by its mean
/// offspring matrix `M`, where `M[i][j]` is the expected number of type-`j`
/// offspring of a type-`i` individual.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchingProcess {
    mean_offspring: Matrix,
}

/// Criticality classification of a branching process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criticality {
    /// Spectral radius < 1: extinction is certain and total progeny has
    /// finite mean.
    Subcritical,
    /// Spectral radius ≈ 1.
    Critical,
    /// Spectral radius > 1: the process survives with positive probability
    /// and the expected total progeny is infinite.
    Supercritical,
}

impl BranchingProcess {
    /// Creates a branching process from its mean offspring matrix (row `i`:
    /// expected offspring counts of a type-`i` parent, by offspring type).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if the matrix is not square,
    /// is empty, or has negative entries.
    pub fn new(mean_offspring: Matrix) -> Result<Self, MarkovError> {
        if mean_offspring.rows() == 0 || mean_offspring.rows() != mean_offspring.cols() {
            return Err(MarkovError::InvalidParameter(
                "mean offspring matrix must be square and non-empty".into(),
            ));
        }
        for i in 0..mean_offspring.rows() {
            for j in 0..mean_offspring.cols() {
                let v = mean_offspring[(i, j)];
                if !v.is_finite() || v < 0.0 {
                    return Err(MarkovError::InvalidParameter(format!(
                        "mean offspring entry ({i},{j}) = {v} must be finite and non-negative"
                    )));
                }
            }
        }
        Ok(BranchingProcess { mean_offspring })
    }

    /// Convenience constructor from nested rows.
    ///
    /// # Errors
    ///
    /// See [`BranchingProcess::new`].
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MarkovError> {
        Self::new(Matrix::from_rows(rows))
    }

    /// Number of types.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.mean_offspring.rows()
    }

    /// The mean offspring matrix.
    #[must_use]
    pub fn mean_offspring(&self) -> &Matrix {
        &self.mean_offspring
    }

    /// Spectral radius of the mean offspring matrix.
    ///
    /// # Errors
    ///
    /// Propagates [`MarkovError::NoConvergence`] from the power iteration.
    pub fn spectral_radius(&self) -> Result<f64, MarkovError> {
        self.mean_offspring.spectral_radius(100_000)
    }

    /// Classifies the process (with tolerance `tol` around criticality).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`BranchingProcess::spectral_radius`].
    pub fn criticality(&self, tol: f64) -> Result<Criticality, MarkovError> {
        let r = self.spectral_radius()?;
        Ok(if r < 1.0 - tol {
            Criticality::Subcritical
        } else if r > 1.0 + tol {
            Criticality::Supercritical
        } else {
            Criticality::Critical
        })
    }

    /// For a subcritical process, returns the vector `m` where `m[i]` is one
    /// plus the expected total number of descendants of a single type-`i`
    /// individual (the individual itself counts as the "one plus").
    ///
    /// This is the minimum non-negative solution of `m = 1 + M·m`, i.e.
    /// `(I − M)·m = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if the process is not
    /// subcritical (the expectation would be infinite), or a linear-algebra
    /// error if the solve fails.
    pub fn expected_total_progeny(&self) -> Result<Vec<f64>, MarkovError> {
        let r = self.spectral_radius()?;
        if r >= 1.0 {
            return Err(MarkovError::InvalidParameter(format!(
                "expected total progeny is infinite: spectral radius {r} >= 1"
            )));
        }
        let n = self.num_types();
        let mut a = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] -= self.mean_offspring[(i, j)];
            }
        }
        a.solve(&vec![1.0; n])
    }
}

/// Expected total progeny (including the root) of a *single-type* branching
/// process with mean offspring `m`, i.e. `1 / (1 − m)`.
///
/// Returns `f64::INFINITY` if `m >= 1`. This is the quantity used throughout
/// the paper's heuristics: each seed upload ultimately causes about
/// `1 / (1 − µ/γ)` departures from the one club.
///
/// # Panics
///
/// Panics if `m` is negative or not finite.
#[must_use]
pub fn single_type_total_progeny(m: f64) -> f64 {
    assert!(
        m >= 0.0 && m.is_finite(),
        "mean offspring must be finite and non-negative"
    );
    if m >= 1.0 {
        f64::INFINITY
    } else {
        1.0 / (1.0 - m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_type_progeny_formula() {
        assert_eq!(single_type_total_progeny(0.0), 1.0);
        assert!((single_type_total_progeny(0.5) - 2.0).abs() < 1e-12);
        assert_eq!(single_type_total_progeny(1.0), f64::INFINITY);
        assert_eq!(single_type_total_progeny(2.0), f64::INFINITY);
    }

    #[test]
    fn subcritical_two_type_progeny() {
        // M = [[0.2, 0.3], [0.1, 0.4]]
        let bp = BranchingProcess::from_rows(&[vec![0.2, 0.3], vec![0.1, 0.4]]).unwrap();
        assert_eq!(bp.criticality(1e-9).unwrap(), Criticality::Subcritical);
        let m = bp.expected_total_progeny().unwrap();
        // Solve (I - M) m = 1 by hand: [0.8, -0.3; -0.1, 0.6] m = [1,1]
        // det = 0.45; m0 = (0.6 + 0.3)/0.45 = 2, m1 = (0.8+0.1)/0.45 = 2
        assert!((m[0] - 2.0).abs() < 1e-9);
        assert!((m[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn supercritical_progeny_is_error() {
        let bp = BranchingProcess::from_rows(&[vec![1.5]]).unwrap();
        assert_eq!(bp.criticality(1e-9).unwrap(), Criticality::Supercritical);
        assert!(bp.expected_total_progeny().is_err());
    }

    #[test]
    fn critical_classification() {
        let bp = BranchingProcess::from_rows(&[vec![1.0]]).unwrap();
        assert_eq!(bp.criticality(1e-6).unwrap(), Criticality::Critical);
    }

    #[test]
    fn abs_rank_one_matrix_matches_paper_solution() {
        // The ABS offspring matrix of Section VI:
        //   [ xi*(a), a ]
        //   [ xi*(b), b ]
        // with a = (K-1)/(1-xi) + mu/gamma and b = mu/gamma.
        // The paper gives the closed form solution for (m_b, m_f).
        let (k, xi, mu_over_gamma) = (4.0_f64, 0.05_f64, 0.5_f64);
        let a_val = (k - 1.0) / (1.0 - xi) + mu_over_gamma;
        let b_val = mu_over_gamma;
        let bp = BranchingProcess::from_rows(&[vec![xi * a_val, a_val], vec![xi * b_val, b_val]])
            .unwrap();
        let denom = 1.0 - xi * a_val - b_val;
        assert!(
            denom > 0.0,
            "test parameters must satisfy the subcriticality condition (6)"
        );
        let m = bp.expected_total_progeny().unwrap();
        let expected_mb = 1.0 + (1.0 + xi) / denom * a_val;
        let expected_mf = 1.0 + (1.0 + xi) / denom * b_val;
        assert!(
            (m[0] - expected_mb).abs() < 1e-8,
            "m_b {} vs {}",
            m[0],
            expected_mb
        );
        assert!(
            (m[1] - expected_mf).abs() < 1e-8,
            "m_f {} vs {}",
            m[1],
            expected_mf
        );
    }

    #[test]
    fn rejects_bad_matrices() {
        assert!(BranchingProcess::from_rows(&[vec![0.1, 0.2]]).is_err());
        assert!(BranchingProcess::from_rows(&[vec![-0.1]]).is_err());
        assert!(BranchingProcess::new(Matrix::zeros(0, 0)).is_err());
        assert!(BranchingProcess::from_rows(&[vec![f64::NAN]]).is_err());
    }

    #[test]
    fn zero_offspring_progeny_is_one() {
        let bp = BranchingProcess::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0]]).unwrap();
        let m = bp.expected_total_progeny().unwrap();
        assert_eq!(m, vec![1.0, 1.0]);
    }
}
