//! Continuous-time Markov chain (CTMC) infrastructure for the P2P stability
//! reproduction.
//!
//! The Zhu–Hajek model is a countable-state CTMC; the paper's proofs lean on
//! a toolbox of classical results (Foster–Lyapunov drift, multi-type
//! branching processes, Kingman's moment bound, an `M/GI/∞` maximal bound,
//! birth–death chains). This crate provides exactly that toolbox, independent
//! of the P2P model itself:
//!
//! * [`Ctmc`] — the generator abstraction: a model enumerates out-going
//!   transitions `(state, rate)` from any state.
//! * [`gillespie`] — an exact-jump (Gillespie / stochastic simulation
//!   algorithm) simulator with observers and stopping rules.
//! * [`alias`] — Walker/Vose alias tables for `O(1)` categorical sampling
//!   (the turbo simulation kernel's arrival draws).
//! * [`path`] — sample-path recording, time averages, linear-trend
//!   estimation.
//! * [`drift`] — numeric Foster–Lyapunov drift `QV(x)` evaluation.
//! * [`branching`] — multi-type branching process means: subcriticality and
//!   expected total progeny.
//! * [`queueing`] — Kingman's maximal bound for compound Poisson processes
//!   (Proposition 20) and the `M/GI/∞` maximal bound (Lemma 21).
//! * [`birth_death`] — classification and stationary distribution of
//!   birth–death chains.
//! * [`stationary`] — stationary distribution of a truncated CTMC by
//!   uniformization and power iteration.
//! * [`classify`] — heuristic transience / stability classification of
//!   finite simulated paths.
//!
//! # Examples
//!
//! Simulating a simple M/M/1 queue and checking its stationary mean:
//!
//! ```
//! use markov::{Ctmc, gillespie::{Simulator, StopRule}};
//! use rand::SeedableRng;
//!
//! struct Mm1 { lambda: f64, mu: f64 }
//! impl Ctmc for Mm1 {
//!     type State = u64;
//!     fn transitions(&self, s: &u64, out: &mut Vec<(u64, f64)>) {
//!         out.push((s + 1, self.lambda));
//!         if *s > 0 { out.push((s - 1, self.mu)); }
//!     }
//! }
//!
//! let model = Mm1 { lambda: 0.5, mu: 1.0 };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let sim = Simulator::new(&model).observe(|s| *s as f64);
//! let run = sim.run(0u64, StopRule::at_time(20_000.0), &mut rng);
//! let mean = run.path.time_average_values();
//! assert!((mean - 1.0).abs() < 0.15); // rho/(1-rho) = 1 for rho = 0.5
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alias;
pub mod birth_death;
pub mod branching;
pub mod classify;
pub mod drift;
pub mod gillespie;
pub mod hitting;
pub mod linalg;
pub mod path;
pub mod poisson;
pub mod queueing;
pub mod stationary;

pub use classify::{PathClass, PathClassifier};
pub use gillespie::{Simulator, SimulatorRun, StopRule};
pub use path::{SamplePath, TrendEstimate};

/// A continuous-time Markov chain described by its generator.
///
/// Implementors enumerate the positive entries of the generator row of a
/// state: each `(target, rate)` pair with `rate > 0` contributes
/// `q(state, target) = rate`. Self-loops (`target == state`) are permitted
/// and ignored by the simulator and drift computations.
pub trait Ctmc {
    /// The state type of the chain.
    type State: Clone + PartialEq + core::fmt::Debug;

    /// Appends the out-going transitions of `state` to `out`.
    ///
    /// `out` is cleared by the caller before the call. Rates must be finite
    /// and non-negative; zero-rate entries are allowed and ignored.
    fn transitions(&self, state: &Self::State, out: &mut Vec<(Self::State, f64)>);

    /// Total out-going rate of `state` (the uniformization constant
    /// contribution). The default implementation sums the transition rates.
    fn total_rate(&self, state: &Self::State) -> f64 {
        let mut buf = Vec::new();
        self.transitions(state, &mut buf);
        buf.iter().map(|(_, r)| r).sum()
    }
}

impl<M: Ctmc + ?Sized> Ctmc for &M {
    type State = M::State;

    fn transitions(&self, state: &Self::State, out: &mut Vec<(Self::State, f64)>) {
        (**self).transitions(state, out);
    }

    fn total_rate(&self, state: &Self::State) -> f64 {
        (**self).total_rate(state)
    }
}

/// Errors produced by the numeric routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A matrix passed to a solver was singular (or numerically so).
    SingularMatrix,
    /// Input dimensions were inconsistent.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// A rate, probability, or other parameter was out of its valid range.
    InvalidParameter(String),
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
    },
}

impl core::fmt::Display for MarkovError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MarkovError::SingularMatrix => write!(f, "matrix is singular"),
            MarkovError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MarkovError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MarkovError::NoConvergence { iterations } => {
                write!(
                    f,
                    "iteration failed to converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for MarkovError {}
