//! Exact-jump (Gillespie) simulation of a [`Ctmc`].

use crate::poisson::{sample_exp, sample_weighted_index};
use crate::Ctmc;
use rand::Rng;

/// When to stop a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Stop once simulated time reaches this value.
    pub max_time: f64,
    /// Stop after this many jumps (safety valve against rate blow-ups).
    pub max_events: u64,
}

impl StopRule {
    /// Stop at simulated time `t` with a generous default event budget.
    #[must_use]
    pub fn at_time(t: f64) -> Self {
        StopRule {
            max_time: t,
            max_events: u64::MAX,
        }
    }

    /// Stop after `n` jumps regardless of simulated time.
    #[must_use]
    pub fn after_events(n: u64) -> Self {
        StopRule {
            max_time: f64::INFINITY,
            max_events: n,
        }
    }

    /// Stop at whichever of time `t` / `n` jumps comes first.
    #[must_use]
    pub fn time_or_events(t: f64, n: u64) -> Self {
        StopRule {
            max_time: t,
            max_events: n,
        }
    }
}

/// Why a run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The time horizon was reached.
    TimeHorizon,
    /// The event budget was exhausted.
    EventBudget,
    /// The chain reached an absorbing state (no out-going transitions).
    Absorbed,
    /// An observer requested an early stop.
    ObserverRequest,
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulatorRun<S> {
    /// Final state at the end of the run.
    pub final_state: S,
    /// Simulated time at the end of the run.
    pub final_time: f64,
    /// Number of jumps executed.
    pub events: u64,
    /// Why the run terminated.
    pub stop_reason: StopReason,
    /// Sample path of the default scalar observable (see [`Simulator::observe`]).
    pub path: crate::path::ScalarPath,
}

/// A boxed scalar observable of the state (see [`Simulator::observe`]).
type Observable<'a, S> = Box<dyn Fn(&S) -> f64 + 'a>;

/// An exact-jump simulator for a [`Ctmc`].
///
/// By default the recorded scalar observable is `0.0`; supply one with
/// [`Simulator::observe`] (the P2P model records the total peer count).
pub struct Simulator<'a, M: Ctmc> {
    model: &'a M,
    observable: Observable<'a, M::State>,
    record_every: u64,
}

impl<'a, M: Ctmc> Simulator<'a, M> {
    /// Creates a simulator for `model`.
    pub fn new(model: &'a M) -> Self {
        Simulator {
            model,
            observable: Box::new(|_| 0.0),
            record_every: 1,
        }
    }

    /// Sets the scalar observable recorded into the run's sample path.
    #[must_use]
    pub fn observe(mut self, f: impl Fn(&M::State) -> f64 + 'a) -> Self {
        self.observable = Box::new(f);
        self
    }

    /// Records the observable only every `n` jumps (plus the initial and
    /// final points). Reduces memory for long runs.
    #[must_use]
    pub fn record_every(mut self, n: u64) -> Self {
        self.record_every = n.max(1);
        self
    }

    /// Runs the chain from `initial` until the stop rule triggers.
    pub fn run<R: Rng + ?Sized>(
        &self,
        initial: M::State,
        stop: StopRule,
        rng: &mut R,
    ) -> SimulatorRun<M::State> {
        self.run_with_observer(initial, stop, rng, |_, _| ObserverAction::Continue)
    }

    /// Runs the chain, invoking `observer(time, state)` after every jump.
    ///
    /// The observer can request an early stop by returning
    /// [`ObserverAction::Stop`].
    pub fn run_with_observer<R, F>(
        &self,
        initial: M::State,
        stop: StopRule,
        rng: &mut R,
        mut observer: F,
    ) -> SimulatorRun<M::State>
    where
        R: Rng + ?Sized,
        F: FnMut(f64, &M::State) -> ObserverAction,
    {
        let mut state = initial;
        let mut t = 0.0;
        let mut events: u64 = 0;
        let mut path = crate::path::ScalarPath::new(0.0, (self.observable)(&state));
        let mut buf: Vec<(M::State, f64)> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let stop_reason;

        loop {
            if t >= stop.max_time {
                stop_reason = StopReason::TimeHorizon;
                break;
            }
            if events >= stop.max_events {
                stop_reason = StopReason::EventBudget;
                break;
            }
            buf.clear();
            self.model.transitions(&state, &mut buf);
            buf.retain(|(s, r)| *r > 0.0 && *s != state);
            if buf.is_empty() {
                stop_reason = StopReason::Absorbed;
                break;
            }
            let total: f64 = buf.iter().map(|(_, r)| r).sum();
            let dt = sample_exp(rng, total);
            if t + dt > stop.max_time {
                t = stop.max_time;
                stop_reason = StopReason::TimeHorizon;
                break;
            }
            t += dt;
            weights.clear();
            weights.extend(buf.iter().map(|(_, r)| *r));
            let idx = sample_weighted_index(rng, &weights).expect("total rate positive");
            state = buf.swap_remove(idx).0;
            events += 1;
            if events.is_multiple_of(self.record_every) {
                path.record(t, (self.observable)(&state));
            }
            if let ObserverAction::Stop = observer(t, &state) {
                stop_reason = StopReason::ObserverRequest;
                break;
            }
        }

        let final_time = t.min(stop.max_time);
        path.record(
            final_time.max(path.times().last().copied().unwrap_or(0.0)),
            (self.observable)(&state),
        );
        path.finish(final_time.max(path.end_time()));
        SimulatorRun {
            final_state: state,
            final_time,
            events,
            stop_reason,
            path,
        }
    }
}

/// Observer decision after each jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverAction {
    /// Keep simulating.
    Continue,
    /// Terminate the run now.
    Stop,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// M/M/1 queue with arrival rate lambda and service rate mu.
    struct Mm1 {
        lambda: f64,
        mu: f64,
    }

    impl Ctmc for Mm1 {
        type State = u64;
        fn transitions(&self, s: &u64, out: &mut Vec<(u64, f64)>) {
            out.push((s + 1, self.lambda));
            if *s > 0 {
                out.push((s - 1, self.mu));
            }
        }
    }

    /// Pure death chain: absorbs at 0.
    struct PureDeath;
    impl Ctmc for PureDeath {
        type State = u64;
        fn transitions(&self, s: &u64, out: &mut Vec<(u64, f64)>) {
            if *s > 0 {
                out.push((s - 1, 1.0));
            }
        }
    }

    #[test]
    fn mm1_stationary_mean() {
        let model = Mm1 {
            lambda: 0.5,
            mu: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(42);
        let run = Simulator::new(&model).observe(|s| *s as f64).run(
            0,
            StopRule::at_time(50_000.0),
            &mut rng,
        );
        // E[N] = rho / (1 - rho) = 1
        let mean = run.path.time_average_over(5_000.0, run.final_time);
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert_eq!(run.stop_reason, StopReason::TimeHorizon);
    }

    #[test]
    fn unstable_mm1_grows_linearly() {
        let model = Mm1 {
            lambda: 2.0,
            mu: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let run = Simulator::new(&model).observe(|s| *s as f64).run(
            0,
            StopRule::at_time(2_000.0),
            &mut rng,
        );
        let trend = run.path.trend(0.5);
        // drift lambda - mu = 1 customer per unit time
        assert!((trend.slope - 1.0).abs() < 0.15, "slope {}", trend.slope);
    }

    #[test]
    fn absorption_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let run = Simulator::new(&PureDeath).observe(|s| *s as f64).run(
            5,
            StopRule::at_time(1e9),
            &mut rng,
        );
        assert_eq!(run.final_state, 0);
        assert_eq!(run.stop_reason, StopReason::Absorbed);
        assert_eq!(run.events, 5);
    }

    #[test]
    fn event_budget_respected() {
        let model = Mm1 {
            lambda: 1.0,
            mu: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let run = Simulator::new(&model).run(0, StopRule::after_events(100), &mut rng);
        assert_eq!(run.events, 100);
        assert_eq!(run.stop_reason, StopReason::EventBudget);
    }

    #[test]
    fn observer_can_stop_early() {
        let model = Mm1 {
            lambda: 5.0,
            mu: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let run = Simulator::new(&model)
            .observe(|s| *s as f64)
            .run_with_observer(0, StopRule::at_time(1e6), &mut rng, |_, s| {
                if *s >= 50 {
                    ObserverAction::Stop
                } else {
                    ObserverAction::Continue
                }
            });
        assert_eq!(run.final_state, 50);
        assert_eq!(run.stop_reason, StopReason::ObserverRequest);
    }

    #[test]
    fn record_every_thins_the_path() {
        let model = Mm1 {
            lambda: 1.0,
            mu: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let run_full = Simulator::new(&model).observe(|s| *s as f64).run(
            0,
            StopRule::after_events(1000),
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let run_thin = Simulator::new(&model)
            .observe(|s| *s as f64)
            .record_every(10)
            .run(0, StopRule::after_events(1000), &mut rng);
        assert!(run_thin.path.len() < run_full.path.len());
        assert_eq!(run_thin.final_state, run_full.final_state);
    }

    #[test]
    fn total_rate_default_impl() {
        let model = Mm1 {
            lambda: 0.3,
            mu: 0.7,
        };
        assert!((model.total_rate(&0) - 0.3).abs() < 1e-12);
        assert!((model.total_rate(&5) - 1.0).abs() < 1e-12);
        // also via the blanket &M impl
        let by_ref: &Mm1 = &model;
        assert!((Ctmc::total_rate(&by_ref, &5) - 1.0).abs() < 1e-12);
    }
}
