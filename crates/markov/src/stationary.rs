//! Stationary distribution of a truncated CTMC.
//!
//! The full P2P chain has a countably infinite state space, but positive
//! recurrent parameterisations concentrate their mass on a modest set of
//! states. Enumerating the state space reachable below a population cap and
//! solving for the stationary distribution of the truncated chain (with the
//! cap acting as a reflecting boundary) gives numerically useful stationary
//! summaries (e.g. `E[N]`) to compare against simulation.

use crate::{Ctmc, MarkovError};
use std::collections::HashMap;
use std::hash::Hash;

/// Options for the truncated stationary solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationaryOptions {
    /// Maximum number of states to enumerate (breadth-first from the initial
    /// state).
    pub max_states: usize,
    /// Maximum power-iteration sweeps on the uniformized chain.
    pub max_iterations: usize,
    /// L1 convergence tolerance between sweeps.
    pub tolerance: f64,
}

impl Default for StationaryOptions {
    fn default() -> Self {
        StationaryOptions {
            max_states: 200_000,
            max_iterations: 20_000,
            tolerance: 1e-10,
        }
    }
}

/// The stationary distribution of a truncated chain.
#[derive(Debug, Clone)]
pub struct StationaryDistribution<S> {
    states: Vec<S>,
    probabilities: Vec<f64>,
    /// `true` if the enumeration hit `max_states` (the truncation may bias
    /// the result).
    pub truncated: bool,
    /// Number of power-iteration sweeps performed.
    pub iterations: usize,
}

impl<S: Clone + Eq + Hash> StationaryDistribution<S> {
    /// Probability assigned to `state` (zero if not enumerated).
    #[must_use]
    pub fn probability_of(&self, state: &S) -> f64 {
        self.states
            .iter()
            .position(|s| s == state)
            .map_or(0.0, |i| self.probabilities[i])
    }

    /// Expected value of an observable under the distribution.
    #[must_use]
    pub fn expectation<F: Fn(&S) -> f64>(&self, f: F) -> f64 {
        self.states
            .iter()
            .zip(&self.probabilities)
            .map(|(s, p)| f(s) * p)
            .sum()
    }

    /// The enumerated states and their probabilities.
    pub fn support(&self) -> impl Iterator<Item = (&S, f64)> {
        self.states.iter().zip(self.probabilities.iter().copied())
    }

    /// Number of states enumerated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if no states were enumerated (cannot happen for valid input).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Computes the stationary distribution of the chain restricted to the states
/// reachable from `initial` while `keep(state)` holds (transitions leaving
/// the kept region are dropped, i.e. the boundary reflects).
///
/// # Errors
///
/// Returns [`MarkovError::NoConvergence`] if power iteration does not reach
/// the requested tolerance, or [`MarkovError::InvalidParameter`] if the kept
/// region is empty.
pub fn stationary_distribution<M, F>(
    model: &M,
    initial: M::State,
    keep: F,
    options: StationaryOptions,
) -> Result<StationaryDistribution<M::State>, MarkovError>
where
    M: Ctmc,
    M::State: Eq + Hash,
    F: Fn(&M::State) -> bool,
{
    if !keep(&initial) {
        return Err(MarkovError::InvalidParameter(
            "initial state is outside the kept region".into(),
        ));
    }
    // Breadth-first enumeration of the kept, reachable states.
    // simlint: allow(D001, "lookup-only: the map is insert/get, never iterated; enumeration order lives in `states` (BFS discovery order), pinned by `bfs_enumeration_order_is_discovery_order`")
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut states: Vec<M::State> = Vec::new();
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    index.insert(initial.clone(), 0);
    states.push(initial);
    queue.push_back(0);
    let mut truncated = false;

    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut buf = Vec::new();
    while let Some(i) = queue.pop_front() {
        buf.clear();
        let state = states[i].clone();
        model.transitions(&state, &mut buf);
        let mut row = Vec::new();
        for (target, rate) in buf.drain(..) {
            if rate <= 0.0 || target == state || !keep(&target) {
                continue;
            }
            let j = match index.get(&target) {
                Some(&j) => j,
                None => {
                    if states.len() >= options.max_states {
                        truncated = true;
                        continue;
                    }
                    let j = states.len();
                    index.insert(target.clone(), j);
                    states.push(target);
                    queue.push_back(j);
                    j
                }
            };
            row.push((j, rate));
        }
        if rows.len() <= i {
            rows.resize(i + 1, Vec::new());
        }
        rows[i] = row;
        // rows for states enumerated later get filled when dequeued
    }
    rows.resize(states.len(), Vec::new());

    let n = states.len();
    // Uniformization constant.
    let unif = rows
        .iter()
        .map(|row| row.iter().map(|(_, r)| r).sum::<f64>())
        .fold(0.0_f64, f64::max)
        .max(1e-12)
        * 1.01;

    // Power iteration on P = I + Q/unif.
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    loop {
        iterations += 1;
        next.iter_mut().for_each(|x| *x = 0.0);
        for (i, row) in rows.iter().enumerate() {
            let out_rate: f64 = row.iter().map(|(_, r)| r).sum();
            let stay = 1.0 - out_rate / unif;
            next[i] += pi[i] * stay;
            for &(j, rate) in row {
                next[j] += pi[i] * rate / unif;
            }
        }
        let total: f64 = next.iter().sum();
        next.iter_mut().for_each(|x| *x /= total);
        let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if diff < options.tolerance {
            break;
        }
        if iterations >= options.max_iterations {
            return Err(MarkovError::NoConvergence { iterations });
        }
    }

    Ok(StationaryDistribution {
        states,
        probabilities: pi,
        truncated,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mm1 {
        lambda: f64,
        mu: f64,
    }
    impl Ctmc for Mm1 {
        type State = u64;
        fn transitions(&self, s: &u64, out: &mut Vec<(u64, f64)>) {
            out.push((s + 1, self.lambda));
            if *s > 0 {
                out.push((s - 1, self.mu));
            }
        }
    }

    #[test]
    fn mm1_truncated_stationary_matches_geometric() {
        let model = Mm1 {
            lambda: 0.5,
            mu: 1.0,
        };
        let dist =
            stationary_distribution(&model, 0, |s| *s <= 60, StationaryOptions::default()).unwrap();
        assert!(!dist.truncated);
        assert_eq!(dist.len(), 61);
        // pi(0) = 1 - rho = 0.5
        assert!((dist.probability_of(&0) - 0.5).abs() < 1e-6);
        let mean = dist.expectation(|s| *s as f64);
        assert!((mean - 1.0).abs() < 1e-4, "mean {mean}");
    }

    #[test]
    fn truncation_flag_reported() {
        let model = Mm1 {
            lambda: 0.5,
            mu: 1.0,
        };
        let opts = StationaryOptions {
            max_states: 5,
            ..Default::default()
        };
        let dist = stationary_distribution(&model, 0, |s| *s <= 60, opts).unwrap();
        assert!(dist.truncated);
        assert_eq!(dist.len(), 5);
    }

    #[test]
    fn initial_outside_region_is_error() {
        let model = Mm1 {
            lambda: 0.5,
            mu: 1.0,
        };
        let r = stationary_distribution(&model, 100, |s| *s <= 60, StationaryOptions::default());
        assert!(r.is_err());
    }

    #[test]
    fn probability_of_unknown_state_is_zero() {
        let model = Mm1 {
            lambda: 0.2,
            mu: 1.0,
        };
        let dist =
            stationary_distribution(&model, 0, |s| *s <= 30, StationaryOptions::default()).unwrap();
        assert_eq!(dist.probability_of(&1_000), 0.0);
        assert!(!dist.is_empty());
    }

    #[test]
    fn bfs_enumeration_order_is_discovery_order() {
        // Binary-tree chain: s → 2s+1, 2s+2 (plus a rate back to the
        // parent, so the truncated chain is irreducible). Level-order
        // discovery from the root must survive verbatim in `support()`:
        // the `index` HashMap is lookup-only and may never leak its own
        // hash-seeded order into the state list.
        struct Tree;
        impl Ctmc for Tree {
            type State = u64;
            fn transitions(&self, s: &u64, out: &mut Vec<(u64, f64)>) {
                out.push((2 * s + 1, 1.0));
                out.push((2 * s + 2, 2.0));
                if *s > 0 {
                    out.push(((s - 1) / 2, 3.0));
                }
            }
        }
        let dist =
            stationary_distribution(&Tree, 0, |s| *s <= 14, StationaryOptions::default()).unwrap();
        let order: Vec<u64> = dist.support().map(|(s, _)| *s).collect();
        assert_eq!(order, (0..=14).collect::<Vec<u64>>());
    }

    #[test]
    fn two_state_chain_exact() {
        // 0 <-> 1 with rates a = 2 (up) and b = 6 (down): pi = (0.75, 0.25).
        struct TwoState;
        impl Ctmc for TwoState {
            type State = u8;
            fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
                match s {
                    0 => out.push((1, 2.0)),
                    _ => out.push((0, 6.0)),
                }
            }
        }
        let dist =
            stationary_distribution(&TwoState, 0, |_| true, StationaryOptions::default()).unwrap();
        assert!((dist.probability_of(&0) - 0.75).abs() < 1e-8);
        assert!((dist.probability_of(&1) - 0.25).abs() < 1e-8);
        let support: Vec<_> = dist.support().collect();
        assert_eq!(support.len(), 2);
    }
}
