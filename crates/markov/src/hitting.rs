//! Empirical hitting-time and return-time statistics.
//!
//! Theorem 14 is phrased in terms of the mean time to reach the empty state;
//! the borderline analysis of Section VIII-D distinguishes null recurrence
//! (returns are certain but their mean time is infinite) from positive
//! recurrence. Finite simulations cannot prove either, but the empirical
//! distribution of return times is the right diagnostic: positive-recurrent
//! chains produce return times with a stable empirical mean as the horizon
//! grows, null-recurrent chains produce a mean dominated by a few enormous
//! excursions.

use crate::gillespie::{ObserverAction, Simulator, StopRule};
use crate::Ctmc;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Summary of the excursions of a scalar observable above a level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExcursionStats {
    /// Number of completed excursions (level upcrossing → next return).
    pub completed: usize,
    /// Mean length of completed excursions.
    pub mean_length: f64,
    /// Maximum completed excursion length.
    pub max_length: f64,
    /// Median completed excursion length.
    pub median_length: f64,
    /// Length of the excursion in progress at the end of the observation
    /// window, if the path ended above the level.
    pub open_excursion: Option<f64>,
    /// Fraction of the total observation time spent above the level.
    pub fraction_above: f64,
}

impl ExcursionStats {
    /// The ratio of the maximum to the median excursion length — a crude
    /// heavy-tail indicator (null-recurrent chains produce very large values
    /// as the horizon grows; positive-recurrent chains keep it moderate).
    #[must_use]
    pub fn max_to_median(&self) -> f64 {
        if self.median_length > 0.0 {
            self.max_length / self.median_length
        } else {
            f64::INFINITY
        }
    }
}

/// Computes excursion statistics of a recorded sample path above `level`.
#[must_use]
pub fn excursions_above(path: &crate::path::ScalarPath, level: f64) -> ExcursionStats {
    let times = path.times();
    let values = path.values();
    let mut lengths = Vec::new();
    let mut start: Option<f64> = if values[0] > level {
        Some(times[0])
    } else {
        None
    };
    for i in 1..times.len() {
        let above = values[i] > level;
        match (start, above) {
            (None, true) => start = Some(times[i]),
            (Some(s), false) => {
                lengths.push(times[i] - s);
                start = None;
            }
            _ => {}
        }
    }
    let open_excursion = start.map(|s| path.end_time() - s);
    let completed = lengths.len();
    let mean_length = if completed == 0 {
        0.0
    } else {
        lengths.iter().sum::<f64>() / completed as f64
    };
    let max_length = lengths.iter().copied().fold(0.0_f64, f64::max);
    let median_length = if completed == 0 {
        0.0
    } else {
        let mut sorted = lengths.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite lengths"));
        sorted[completed / 2]
    };
    ExcursionStats {
        completed,
        mean_length,
        max_length,
        median_length,
        open_excursion,
        fraction_above: 1.0 - path.fraction_at_or_below(level),
    }
}

/// Result of repeatedly measuring the hitting time of a target set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HittingTimes {
    /// Hitting times of the trials that reached the target.
    pub hits: Vec<f64>,
    /// Number of trials that were censored at the deadline without hitting.
    pub censored: usize,
    /// The deadline used.
    pub deadline: f64,
}

impl HittingTimes {
    /// Fraction of trials that reached the target before the deadline.
    #[must_use]
    pub fn hit_fraction(&self) -> f64 {
        let total = self.hits.len() + self.censored;
        if total == 0 {
            0.0
        } else {
            self.hits.len() as f64 / total as f64
        }
    }

    /// Mean hitting time among the trials that hit (ignores censored trials,
    /// so it is an underestimate when censoring occurred).
    #[must_use]
    pub fn mean_hit_time(&self) -> f64 {
        if self.hits.is_empty() {
            f64::INFINITY
        } else {
            self.hits.iter().sum::<f64>() / self.hits.len() as f64
        }
    }

    /// Largest observed hitting time (0 if none hit).
    #[must_use]
    pub fn max_hit_time(&self) -> f64 {
        self.hits.iter().copied().fold(0.0_f64, f64::max)
    }
}

/// Estimates the hitting time of `target` from `initial` by running
/// `trials` independent simulations, each censored at `deadline`.
pub fn estimate_hitting_time<M, F, R>(
    model: &M,
    initial: &M::State,
    target: F,
    trials: usize,
    deadline: f64,
    rng: &mut R,
) -> HittingTimes
where
    M: Ctmc,
    F: Fn(&M::State) -> bool,
    R: Rng + ?Sized,
{
    let mut hits = Vec::new();
    let mut censored = 0;
    for _ in 0..trials {
        if target(initial) {
            hits.push(0.0);
            continue;
        }
        let mut hit_at: Option<f64> = None;
        let sim = Simulator::new(model);
        let run =
            sim.run_with_observer(initial.clone(), StopRule::at_time(deadline), rng, |t, s| {
                if target(s) {
                    hit_at = Some(t);
                    ObserverAction::Stop
                } else {
                    ObserverAction::Continue
                }
            });
        match hit_at {
            Some(t) => hits.push(t),
            None => {
                // Absorption without reaching the target also counts as censored.
                let _ = run;
                censored += 1;
            }
        }
    }
    HittingTimes {
        hits,
        censored,
        deadline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::ScalarPath;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Mm1 {
        lambda: f64,
        mu: f64,
    }
    impl Ctmc for Mm1 {
        type State = u64;
        fn transitions(&self, s: &u64, out: &mut Vec<(u64, f64)>) {
            out.push((s + 1, self.lambda));
            if *s > 0 {
                out.push((s - 1, self.mu));
            }
        }
    }

    #[test]
    fn excursion_statistics_of_a_hand_built_path() {
        let mut p = ScalarPath::new(0.0, 0.0);
        p.record(1.0, 5.0); // excursion 1 starts
        p.record(3.0, 0.0); // ends: length 2
        p.record(4.0, 7.0); // excursion 2 starts
        p.record(8.0, 0.0); // ends: length 4
        p.record(9.0, 9.0); // open excursion
        p.finish(10.0);
        let stats = excursions_above(&p, 2.0);
        assert_eq!(stats.completed, 2);
        assert!((stats.mean_length - 3.0).abs() < 1e-12);
        assert_eq!(stats.max_length, 4.0);
        assert_eq!(stats.median_length, 4.0);
        assert_eq!(stats.open_excursion, Some(1.0));
        assert!((stats.fraction_above - 0.7).abs() < 1e-12);
        assert!((stats.max_to_median() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn excursions_with_no_crossings() {
        let mut p = ScalarPath::new(0.0, 0.0);
        p.record(5.0, 1.0);
        p.finish(10.0);
        let stats = excursions_above(&p, 2.0);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.open_excursion, None);
        assert_eq!(stats.mean_length, 0.0);
        assert_eq!(stats.max_to_median(), f64::INFINITY);
    }

    #[test]
    fn hitting_time_of_stable_queue_returning_to_empty() {
        // M/M/1 with rho = 0.5 started at 5: returns to 0 quickly.
        let model = Mm1 {
            lambda: 0.5,
            mu: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let hitting = estimate_hitting_time(&model, &5u64, |s| *s == 0, 50, 10_000.0, &mut rng);
        assert_eq!(hitting.censored, 0);
        assert_eq!(hitting.hit_fraction(), 1.0);
        // Mean return time from 5 is 5 / (mu - lambda) = 10.
        assert!(
            (hitting.mean_hit_time() - 10.0).abs() < 3.0,
            "mean {}",
            hitting.mean_hit_time()
        );
        assert!(hitting.max_hit_time() >= hitting.mean_hit_time());
    }

    #[test]
    fn hitting_time_of_unstable_queue_is_censored() {
        // M/M/1 with rho = 3 started at 20 almost never drains within the deadline.
        let model = Mm1 {
            lambda: 3.0,
            mu: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let hitting = estimate_hitting_time(&model, &20u64, |s| *s == 0, 20, 50.0, &mut rng);
        assert!(hitting.censored >= 18, "censored {}", hitting.censored);
        assert!(hitting.hit_fraction() <= 0.1);
    }

    #[test]
    fn hitting_time_from_target_state_is_zero() {
        let model = Mm1 {
            lambda: 0.5,
            mu: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let hitting = estimate_hitting_time(&model, &0u64, |s| *s == 0, 5, 10.0, &mut rng);
        assert_eq!(hitting.hits, vec![0.0; 5]);
        assert_eq!(hitting.mean_hit_time(), 0.0);
    }
}
