//! Walker/Vose alias tables: O(1) categorical sampling.
//!
//! [`sample_weighted_index`](crate::poisson::sample_weighted_index) walks the
//! weight slice linearly and the cumulative-sum sampler of
//! [`poisson::CumulativeWeights`](crate::poisson::CumulativeWeights) pays a
//! binary search per draw. An [`AliasTable`] spends `O(n)` once to build two
//! parallel arrays — an acceptance probability and an alias index per column
//! — after which every draw costs exactly one uniform integer, one uniform
//! float, and one comparison, independent of the number of categories. This
//! is the sampler behind the turbo simulation kernel's arrival draws.
//!
//! Unlike the cumulative-sum sampler, an alias table consumes *two* uniform
//! draws per sample and maps them to indices differently, so it is **not**
//! draw-compatible with the linear/binary-search samplers — use it only
//! where trajectory parity is not required.
//!
//! # Examples
//!
//! ```
//! use markov::alias::AliasTable;
//! use rand::SeedableRng;
//!
//! let table = AliasTable::new(&[1.0, 0.0, 3.0]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut counts = [0u32; 3];
//! for _ in 0..4000 {
//!     counts[table.sample(&mut rng)] += 1;
//! }
//! assert_eq!(counts[1], 0, "zero-weight categories are never drawn");
//! assert!(counts[2] > counts[0]);
//! ```

use rand::Rng;

/// A Walker/Vose alias table over `n` categories: `O(n)` construction,
/// `O(1)` sampling, rebuildable in place without reallocating.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability of column `i` (scaled to mean 1).
    prob: Vec<f64>,
    /// Fallback category of column `i` when the acceptance test fails.
    alias: Vec<u32>,
    /// Construction worklists, kept so rebuilds reuse their capacity.
    small: Vec<u32>,
    large: Vec<u32>,
}

impl AliasTable {
    /// Builds a table for the given non-negative weights.
    ///
    /// Returns `None` if the weights are empty, contain a negative or
    /// non-finite entry, or sum to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Option<Self> {
        let mut table = AliasTable::default();
        table.rebuild(weights).then_some(table)
    }

    /// Rebuilds the table in place for new weights, reusing every internal
    /// buffer. Returns `false` (leaving the table empty) under the same
    /// conditions [`AliasTable::new`] returns `None`.
    pub fn rebuild(&mut self, weights: &[f64]) -> bool {
        self.prob.clear();
        self.alias.clear();
        self.small.clear();
        self.large.clear();
        let n = weights.len();
        if n == 0 || n > u32::MAX as usize {
            return false;
        }
        let total: f64 = weights.iter().sum();
        if !(total.is_finite() && total > 0.0) || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
        {
            return false;
        }
        // Vose's method: scale weights to mean 1, pair each deficient
        // ("small") column with a surplus ("large") one.
        let scale = n as f64 / total;
        self.alias.resize(n, 0);
        for (i, &w) in weights.iter().enumerate() {
            let p = w * scale;
            self.prob.push(p);
            if p < 1.0 {
                self.small.push(i as u32);
            } else {
                self.large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (self.small.last(), self.large.last()) {
            self.small.pop();
            let (s, l) = (s as usize, l as usize);
            self.alias[s] = l as u32;
            // The large column donates the small column's deficit.
            self.prob[l] = (self.prob[l] + self.prob[s]) - 1.0;
            if self.prob[l] < 1.0 {
                self.large.pop();
                self.small.push(l as u32);
            }
        }
        // Float slack leaves stragglers on either list; they are full columns.
        for &i in self.small.iter().chain(self.large.iter()) {
            self.prob[i as usize] = 1.0;
        }
        self.small.clear();
        self.large.clear();
        true
    }

    /// Number of categories (zero when the table has not been built).
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table holds no categories.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index proportionally to the build weights: one
    /// uniform column pick plus one acceptance test, `O(1)` regardless of
    /// the number of categories.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty (construction failed or never happened).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(!self.prob.is_empty(), "sampling from an empty alias table");
        let column = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[column] {
            column
        } else {
            self.alias[column] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -2.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_category_always_drawn() {
        let table = AliasTable::new(&[0.7]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [4.0, 1.0, 0.0, 2.0, 3.0];
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut counts = [0u64; 5];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn rebuild_reuses_the_table() {
        let mut table = AliasTable::new(&[1.0, 1.0]).unwrap();
        assert!(table.rebuild(&[0.0, 5.0]));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(table.sample(&mut rng), 1);
        }
        assert!(!table.rebuild(&[]));
        assert!(table.is_empty());
    }
}
