//! Numeric Foster–Lyapunov drift evaluation.
//!
//! For a CTMC with generator `Q` and a function `V` on the state space, the
//! drift at `x` is `QV(x) = Σ_{x' ≠ x} q(x, x′) (V(x′) − V(x))` (eq. (10) of
//! the paper). The Foster–Lyapunov criterion (Proposition 18 / Lemma 7)
//! establishes positive recurrence when `QV ≤ −f + g` with suitable `f, g`;
//! this module evaluates drifts numerically so experiments can *check* the
//! paper's Lyapunov argument on sampled states.

use crate::Ctmc;

/// Computes the drift `QV(x)` of a scalar function `V` at state `x`.
///
/// Self-loops (`x' == x`) contribute nothing and are skipped.
pub fn drift<M, V>(model: &M, state: &M::State, v: V) -> f64
where
    M: Ctmc,
    V: Fn(&M::State) -> f64,
{
    let mut buf = Vec::new();
    model.transitions(state, &mut buf);
    let v_here = v(state);
    buf.iter()
        .filter(|(target, rate)| *rate > 0.0 && target != state)
        .map(|(target, rate)| rate * (v(target) - v_here))
        .sum()
}

/// A borrowed scalar function of the state, as accepted by [`drift_many`].
pub type StateFn<'a, S> = &'a dyn Fn(&S) -> f64;

/// Computes drifts of several functions at once, sharing one transition
/// enumeration. Returns one drift per function in `vs`.
pub fn drift_many<M>(model: &M, state: &M::State, vs: &[StateFn<'_, M::State>]) -> Vec<f64>
where
    M: Ctmc,
{
    let mut buf = Vec::new();
    model.transitions(state, &mut buf);
    let here: Vec<f64> = vs.iter().map(|v| v(state)).collect();
    let mut out = vec![0.0; vs.len()];
    for (target, rate) in buf.iter().filter(|(t, r)| *r > 0.0 && t != state) {
        for (k, v) in vs.iter().enumerate() {
            out[k] += rate * (v(target) - here[k]);
        }
    }
    out
}

/// Result of verifying a Foster–Lyapunov condition over a set of states.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftCheck {
    /// Number of states examined.
    pub states_checked: usize,
    /// Number of states where the drift condition was violated.
    pub violations: usize,
    /// The largest drift observed (most positive).
    pub max_drift: f64,
    /// The smallest drift observed (most negative).
    pub min_drift: f64,
}

impl DriftCheck {
    /// Returns `true` if no violation was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations == 0
    }
}

/// Checks `QV(x) ≤ bound(x)` over an iterator of states.
pub fn check_drift_condition<M, V, B, I>(model: &M, states: I, v: V, bound: B) -> DriftCheck
where
    M: Ctmc,
    V: Fn(&M::State) -> f64,
    B: Fn(&M::State) -> f64,
    I: IntoIterator<Item = M::State>,
{
    let mut check = DriftCheck {
        states_checked: 0,
        violations: 0,
        max_drift: f64::NEG_INFINITY,
        min_drift: f64::INFINITY,
    };
    for s in states {
        let d = drift(model, &s, &v);
        check.states_checked += 1;
        check.max_drift = check.max_drift.max(d);
        check.min_drift = check.min_drift.min(d);
        if d > bound(&s) {
            check.violations += 1;
        }
    }
    check
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mm1 {
        lambda: f64,
        mu: f64,
    }
    impl Ctmc for Mm1 {
        type State = u64;
        fn transitions(&self, s: &u64, out: &mut Vec<(u64, f64)>) {
            out.push((s + 1, self.lambda));
            if *s > 0 {
                out.push((s - 1, self.mu));
            }
        }
    }

    #[test]
    fn linear_lyapunov_drift_of_mm1() {
        let model = Mm1 {
            lambda: 0.4,
            mu: 1.0,
        };
        // V(n) = n: drift is lambda - mu for n >= 1, lambda at 0.
        let d0 = drift(&model, &0, |s| *s as f64);
        let d5 = drift(&model, &5, |s| *s as f64);
        assert!((d0 - 0.4).abs() < 1e-12);
        assert!((d5 - (0.4 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn quadratic_lyapunov_drift_of_mm1() {
        let model = Mm1 {
            lambda: 0.4,
            mu: 1.0,
        };
        // V(n) = n^2: QV(n) = lambda((n+1)^2 - n^2) + mu((n-1)^2 - n^2)
        //            = lambda(2n+1) + mu(1-2n) for n >= 1.
        let n = 7u64;
        let expected = 0.4 * (2.0 * n as f64 + 1.0) + 1.0 * (1.0 - 2.0 * n as f64);
        let d = drift(&model, &n, |s| (*s as f64).powi(2));
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn drift_many_matches_individual_drifts() {
        let model = Mm1 {
            lambda: 0.7,
            mu: 0.9,
        };
        let f1 = |s: &u64| *s as f64;
        let f2 = |s: &u64| (*s as f64).powi(2);
        let ds = drift_many(&model, &3, &[&f1, &f2]);
        assert!((ds[0] - drift(&model, &3, f1)).abs() < 1e-12);
        assert!((ds[1] - drift(&model, &3, f2)).abs() < 1e-12);
    }

    #[test]
    fn drift_condition_check_for_stable_queue() {
        let model = Mm1 {
            lambda: 0.4,
            mu: 1.0,
        };
        // For n >= 1, drift of V(n) = n is -0.6 <= -0.5.
        let check = check_drift_condition(&model, 1u64..200, |s| *s as f64, |_| -0.5);
        assert!(check.holds());
        assert_eq!(check.states_checked, 199);
        assert!((check.max_drift + 0.6).abs() < 1e-12);
    }

    #[test]
    fn drift_condition_check_detects_violations() {
        let model = Mm1 {
            lambda: 2.0,
            mu: 1.0,
        };
        let check = check_drift_condition(&model, 1u64..50, |s| *s as f64, |_| 0.0);
        assert!(!check.holds());
        assert_eq!(check.violations, 49);
        assert!(check.min_drift > 0.0);
    }
}
