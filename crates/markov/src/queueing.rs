//! Queueing-theoretic maximal bounds used in the transience proof.
//!
//! * [`kingman_bound`] — Proposition 20: Kingman's moment bound adapted to
//!   compound Poisson processes, `P{C_t < B + εt for all t} ≥ 1 − α m₂ / (2B(ε − α m₁))`.
//! * [`mgi_infinity_bound`] — Lemma 21: a maximal bound for the number of
//!   customers in an `M/GI/∞` queue started empty.
//! * [`MmInfinity`] — exact facts about the `M/M/∞` queue (used in tests and
//!   as a sanity baseline for the peer-seed population, whose departure rate
//!   `γ x_F` scales like an infinite-server system).

use crate::MarkovError;

/// Parameters of a compound Poisson process: batch arrivals at rate `rate`,
/// batch sizes with mean `batch_mean` and mean square `batch_mean_square`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompoundPoisson {
    /// Batch arrival rate α.
    pub rate: f64,
    /// Mean batch size m₁.
    pub batch_mean: f64,
    /// Mean *square* batch size m₂.
    pub batch_mean_square: f64,
}

impl CompoundPoisson {
    /// Mean growth rate `α · m₁` of the compound process.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        self.rate * self.batch_mean
    }
}

/// Kingman's moment bound for a compound Poisson process `C` with `C₀ = 0`
/// (Proposition 20 of the paper):
///
/// `P{ C_t < B + ε t  for all t ≥ 0 } ≥ 1 − α m₂ / (2 B (ε − α m₁))`,
///
/// valid for `ε > α m₁`. Returns the lower bound on the probability, clamped
/// to `[0, 1]`.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidParameter`] if `B ≤ 0`, if any parameter is
/// negative or non-finite, or if `ε ≤ α m₁` (the bound requires drift slack).
pub fn kingman_bound(process: CompoundPoisson, b: f64, epsilon: f64) -> Result<f64, MarkovError> {
    let CompoundPoisson {
        rate,
        batch_mean,
        batch_mean_square,
    } = process;
    for (name, v) in [
        ("rate", rate),
        ("batch_mean", batch_mean),
        ("batch_mean_square", batch_mean_square),
        ("B", b),
        ("epsilon", epsilon),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(MarkovError::InvalidParameter(format!(
                "{name} = {v} must be finite and non-negative"
            )));
        }
    }
    if b <= 0.0 {
        return Err(MarkovError::InvalidParameter(
            "B must be strictly positive".into(),
        ));
    }
    if epsilon <= rate * batch_mean {
        return Err(MarkovError::InvalidParameter(format!(
            "epsilon = {epsilon} must exceed the mean drift {}",
            rate * batch_mean
        )));
    }
    let bound = 1.0 - rate * batch_mean_square / (2.0 * b * (epsilon - rate * batch_mean));
    Ok(bound.clamp(0.0, 1.0))
}

/// The `M/GI/∞` maximal bound of Lemma 21: if `M` is the number of customers
/// in an `M/GI/∞` queue with arrival rate `λ`, mean service time `m`, and
/// `M₀ = 0`, then for `B, ε > 0`
///
/// `P{ M_t ≥ B + ε t  for some t ≥ 0 } ≤ e^{λ(m+1)} 2^{−B} / (1 − 2^{−ε})`.
///
/// Returns the upper bound on the probability, clamped to `[0, 1]`.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidParameter`] if any parameter is negative,
/// non-finite, or if `B` or `ε` is not strictly positive.
pub fn mgi_infinity_bound(
    arrival_rate: f64,
    mean_service: f64,
    b: f64,
    epsilon: f64,
) -> Result<f64, MarkovError> {
    for (name, v) in [
        ("arrival_rate", arrival_rate),
        ("mean_service", mean_service),
        ("B", b),
        ("epsilon", epsilon),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(MarkovError::InvalidParameter(format!(
                "{name} = {v} must be finite and non-negative"
            )));
        }
    }
    if b <= 0.0 || epsilon <= 0.0 {
        return Err(MarkovError::InvalidParameter(
            "B and epsilon must be strictly positive".into(),
        ));
    }
    let bound =
        (arrival_rate * (mean_service + 1.0)).exp() * 2f64.powf(-b) / (1.0 - 2f64.powf(-epsilon));
    Ok(bound.clamp(0.0, 1.0))
}

/// Exact facts about an `M/M/∞` queue with arrival rate `λ` and per-customer
/// service rate `γ` (so the stationary distribution is Poisson with mean
/// `λ/γ`). The peer-seed population in the model behaves like this system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmInfinity {
    /// Arrival rate λ.
    pub arrival_rate: f64,
    /// Per-customer service (departure) rate γ.
    pub service_rate: f64,
}

impl MmInfinity {
    /// Creates the queue description.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] unless both rates are
    /// finite, the arrival rate is non-negative and the service rate is
    /// strictly positive.
    pub fn new(arrival_rate: f64, service_rate: f64) -> Result<Self, MarkovError> {
        if !arrival_rate.is_finite() || arrival_rate < 0.0 {
            return Err(MarkovError::InvalidParameter(
                "arrival rate must be finite and non-negative".into(),
            ));
        }
        if !service_rate.is_finite() || service_rate <= 0.0 {
            return Err(MarkovError::InvalidParameter(
                "service rate must be finite and positive".into(),
            ));
        }
        Ok(MmInfinity {
            arrival_rate,
            service_rate,
        })
    }

    /// Stationary mean number of customers, `λ/γ`.
    #[must_use]
    pub fn stationary_mean(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Stationary probability of exactly `n` customers (Poisson pmf).
    #[must_use]
    pub fn stationary_pmf(&self, n: u64) -> f64 {
        let m = self.stationary_mean();
        if m == 0.0 {
            return if n == 0 { 1.0 } else { 0.0 };
        }
        // exp(-m) m^n / n!  computed in log space for robustness.
        let mut log_p = -m + n as f64 * m.ln();
        for k in 1..=n {
            log_p -= (k as f64).ln();
        }
        log_p.exp()
    }

    /// Transient mean `E[M_t]` starting from an empty system:
    /// `(λ/γ)(1 − e^{−γ t})`.
    #[must_use]
    pub fn transient_mean(&self, t: f64) -> f64 {
        self.stationary_mean() * (1.0 - (-self.service_rate * t).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gillespie::{Simulator, StopRule};
    use crate::Ctmc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kingman_bound_basics() {
        let p = CompoundPoisson {
            rate: 1.0,
            batch_mean: 1.0,
            batch_mean_square: 1.0,
        };
        // Large B makes the bound approach 1.
        let lo = kingman_bound(p, 1_000.0, 2.0).unwrap();
        assert!(lo > 0.999);
        // Tiny B gives a vacuous (clamped to 0) bound.
        let lo = kingman_bound(p, 1e-6, 1.0 + 1e-9).unwrap();
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn kingman_bound_monotone_in_b() {
        let p = CompoundPoisson {
            rate: 2.0,
            batch_mean: 1.5,
            batch_mean_square: 4.0,
        };
        let l1 = kingman_bound(p, 10.0, 4.0).unwrap();
        let l2 = kingman_bound(p, 100.0, 4.0).unwrap();
        assert!(l2 >= l1);
    }

    #[test]
    fn kingman_bound_rejects_insufficient_drift_slack() {
        let p = CompoundPoisson {
            rate: 1.0,
            batch_mean: 2.0,
            batch_mean_square: 5.0,
        };
        assert!(kingman_bound(p, 10.0, 2.0).is_err());
        assert!(kingman_bound(p, 10.0, 1.0).is_err());
        assert!(kingman_bound(p, 0.0, 3.0).is_err());
    }

    #[test]
    fn kingman_bound_validated_empirically() {
        // Poisson (unit batches) process at rate 1, envelope B + 1.5 t.
        let p = CompoundPoisson {
            rate: 1.0,
            batch_mean: 1.0,
            batch_mean_square: 1.0,
        };
        let b = 10.0;
        let eps = 1.5;
        let lower = kingman_bound(p, b, eps).unwrap();
        // Empirical probability that a rate-1 Poisson process stays below the
        // envelope B + eps * t over a long horizon.
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 400;
        let horizon = 2_000.0;
        let mut ok = 0;
        for _ in 0..trials {
            let times = crate::poisson::poisson_process_times(&mut rng, 1.0, horizon);
            let mut count = 0.0;
            let mut violated = false;
            for t in times {
                count += 1.0;
                if count >= b + eps * t {
                    violated = true;
                    break;
                }
            }
            if !violated {
                ok += 1;
            }
        }
        let empirical = ok as f64 / trials as f64;
        assert!(
            empirical >= lower - 0.05,
            "empirical {empirical} vs bound {lower}"
        );
    }

    #[test]
    fn mgi_bound_basics() {
        // Large B: probability of ever exceeding the envelope is tiny.
        let hi = mgi_infinity_bound(1.0, 2.0, 200.0, 1.0).unwrap();
        assert!(hi < 1e-10);
        // Tiny B: vacuous bound 1.
        let hi = mgi_infinity_bound(5.0, 2.0, 0.1, 0.1).unwrap();
        assert_eq!(hi, 1.0);
        assert!(mgi_infinity_bound(1.0, 1.0, 0.0, 1.0).is_err());
        assert!(mgi_infinity_bound(-1.0, 1.0, 1.0, 1.0).is_err());
    }

    struct MmInfModel {
        lambda: f64,
        gamma: f64,
    }
    impl Ctmc for MmInfModel {
        type State = u64;
        fn transitions(&self, s: &u64, out: &mut Vec<(u64, f64)>) {
            out.push((s + 1, self.lambda));
            if *s > 0 {
                out.push((s - 1, self.gamma * *s as f64));
            }
        }
    }

    #[test]
    fn mm_infinity_stationary_mean_matches_simulation() {
        let q = MmInfinity::new(3.0, 1.5).unwrap();
        assert!((q.stationary_mean() - 2.0).abs() < 1e-12);
        let model = MmInfModel {
            lambda: 3.0,
            gamma: 1.5,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let run = Simulator::new(&model).observe(|s| *s as f64).run(
            0,
            StopRule::at_time(5_000.0),
            &mut rng,
        );
        let mean = run.path.time_average_over(500.0, run.final_time);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn mm_infinity_pmf_sums_to_one() {
        let q = MmInfinity::new(4.0, 2.0).unwrap();
        let total: f64 = (0..200).map(|n| q.stationary_pmf(n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // mode around the mean 2
        assert!(q.stationary_pmf(2) > q.stationary_pmf(10));
    }

    #[test]
    fn mm_infinity_transient_mean_monotone() {
        let q = MmInfinity::new(1.0, 0.5).unwrap();
        assert_eq!(q.transient_mean(0.0), 0.0);
        assert!(q.transient_mean(1.0) < q.transient_mean(10.0));
        assert!((q.transient_mean(1e6) - q.stationary_mean()).abs() < 1e-9);
    }

    #[test]
    fn mm_infinity_rejects_bad_rates() {
        assert!(MmInfinity::new(-1.0, 1.0).is_err());
        assert!(MmInfinity::new(1.0, 0.0).is_err());
        assert!(MmInfinity::new(f64::NAN, 1.0).is_err());
    }
}
