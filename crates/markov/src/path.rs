//! Sample-path recording and summary statistics.

use serde::{Deserialize, Serialize};

/// A piecewise-constant sample path of a scalar observable of a CTMC.
///
/// The path holds `(time, value)` pairs where `value` is the observable
/// immediately *after* the jump at `time` (the first entry is the initial
/// condition at time 0), plus the final time up to which the last value held.
///
/// # Examples
///
/// ```
/// use markov::SamplePath;
/// let mut p = SamplePath::new(0.0, 2.0);
/// p.record(1.0, 4.0);
/// p.record(3.0, 0.0);
/// p.finish(5.0);
/// // time average: 2*1 + 4*2 + 0*2 over 5 time units
/// assert!((p.time_average_values() - 2.0).abs() < 1e-12);
/// assert_eq!(p.max_value(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarPath {
    times: Vec<f64>,
    values: Vec<f64>,
    end_time: f64,
}

impl ScalarPath {
    /// Creates a path with the given initial value at time `t0`.
    #[must_use]
    pub fn new(t0: f64, initial: f64) -> Self {
        ScalarPath {
            times: vec![t0],
            values: vec![initial],
            end_time: t0,
        }
    }

    /// Records a new value holding from time `t` onward.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded time.
    pub fn record(&mut self, t: f64, value: f64) {
        let last = *self.times.last().expect("path is never empty");
        assert!(t >= last, "times must be non-decreasing ({t} < {last})");
        self.times.push(t);
        self.values.push(value);
        self.end_time = self.end_time.max(t);
    }

    /// Declares the end of observation at time `t`.
    pub fn finish(&mut self, t: f64) {
        assert!(
            t >= self.end_time,
            "finish time must not precede the last event"
        );
        self.end_time = t;
    }

    /// Number of recorded points (including the initial one).
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if only the initial point was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.len() <= 1
    }

    /// The recorded jump times.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The recorded values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The end of the observation window.
    #[must_use]
    pub fn end_time(&self) -> f64 {
        self.end_time
    }

    /// The last recorded value.
    #[must_use]
    pub fn last_value(&self) -> f64 {
        *self.values.last().expect("path is never empty")
    }

    /// The largest recorded value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The smallest recorded value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Time-average of the observable over the whole observation window.
    ///
    /// Returns the initial value if the window has zero length.
    #[must_use]
    pub fn time_average_values(&self) -> f64 {
        self.time_average_over(self.times[0], self.end_time)
    }

    /// Time-average over the window `[from, to]` (clamped to the observation
    /// window).
    #[must_use]
    pub fn time_average_over(&self, from: f64, to: f64) -> f64 {
        let from = from.max(self.times[0]);
        let to = to.min(self.end_time);
        if to <= from {
            return self.value_at(from);
        }
        let mut acc = 0.0;
        for i in 0..self.times.len() {
            let seg_start = self.times[i].max(from);
            let seg_end = if i + 1 < self.times.len() {
                self.times[i + 1]
            } else {
                self.end_time
            }
            .min(to);
            if seg_end > seg_start {
                acc += self.values[i] * (seg_end - seg_start);
            }
        }
        acc / (to - from)
    }

    /// The value of the path at time `t` (the value of the last jump at or
    /// before `t`; the initial value if `t` precedes the window).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => self.values[i],
            Err(0) => self.values[0],
            Err(i) => self.values[i - 1],
        }
    }

    /// Samples the path at `n + 1` equally spaced times across the window.
    #[must_use]
    pub fn resample(&self, n: usize) -> Vec<(f64, f64)> {
        let t0 = self.times[0];
        let t1 = self.end_time;
        if n == 0 || t1 <= t0 {
            return vec![(t0, self.values[0])];
        }
        (0..=n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as f64 / n as f64;
                (t, self.value_at(t))
            })
            .collect()
    }

    /// Least-squares linear trend of the observable against time over the
    /// later fraction `tail_fraction` of the window (e.g. `0.5` for the
    /// second half), evaluated on an even resampling of the path.
    ///
    /// Transient (unstable) parameterisations of the P2P model exhibit a
    /// positive slope of the peer count proportional to the one-club growth
    /// rate; positive-recurrent ones have slope near zero.
    #[must_use]
    pub fn trend(&self, tail_fraction: f64) -> TrendEstimate {
        let tail_fraction = tail_fraction.clamp(0.01, 1.0);
        let t0 = self.times[0];
        let t1 = self.end_time;
        let from = t1 - (t1 - t0) * tail_fraction;
        let samples: Vec<(f64, f64)> = self
            .resample(512)
            .into_iter()
            .filter(|&(t, _)| t >= from)
            .collect();
        TrendEstimate::from_samples(&samples)
    }

    /// Fraction of the observation window during which the value was at or
    /// below `level`.
    #[must_use]
    pub fn fraction_at_or_below(&self, level: f64) -> f64 {
        let total = self.end_time - self.times[0];
        if total <= 0.0 {
            return if self.values[0] <= level { 1.0 } else { 0.0 };
        }
        let mut acc = 0.0;
        for i in 0..self.times.len() {
            let seg_end = if i + 1 < self.times.len() {
                self.times[i + 1]
            } else {
                self.end_time
            };
            if self.values[i] <= level {
                acc += seg_end - self.times[i];
            }
        }
        acc / total
    }

    /// Number of upcrossings of `level`: transitions from `<= level` to
    /// `> level`. Used as a crude return-frequency statistic.
    #[must_use]
    pub fn upcrossings_of(&self, level: f64) -> usize {
        let mut count = 0;
        for w in self.values.windows(2) {
            if w[0] <= level && w[1] > level {
                count += 1;
            }
        }
        count
    }
}

/// Alias kept for the public API: a scalar sample path.
pub type SamplePath = ScalarPath;

/// Result of a least-squares linear fit `value ≈ intercept + slope · t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendEstimate {
    /// Fitted slope (units of observable per unit time).
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination of the fit (0 when degenerate).
    pub r_squared: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl TrendEstimate {
    /// Fits a line to `(t, value)` samples. Returns a zero-slope estimate if
    /// fewer than two distinct times are provided.
    #[must_use]
    pub fn from_samples(samples: &[(f64, f64)]) -> Self {
        let n = samples.len();
        if n < 2 {
            let intercept = samples.first().map_or(0.0, |&(_, v)| v);
            return TrendEstimate {
                slope: 0.0,
                intercept,
                r_squared: 0.0,
                samples: n,
            };
        }
        let nf = n as f64;
        let mean_t = samples.iter().map(|&(t, _)| t).sum::<f64>() / nf;
        let mean_v = samples.iter().map(|&(_, v)| v).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(t, v) in samples {
            sxx += (t - mean_t) * (t - mean_t);
            sxy += (t - mean_t) * (v - mean_v);
            syy += (v - mean_v) * (v - mean_v);
        }
        if sxx <= 0.0 {
            return TrendEstimate {
                slope: 0.0,
                intercept: mean_v,
                r_squared: 0.0,
                samples: n,
            };
        }
        let slope = sxy / sxx;
        let intercept = mean_v - slope * mean_t;
        let r_squared = if syy > 0.0 {
            (sxy * sxy) / (sxx * syy)
        } else {
            0.0
        };
        TrendEstimate {
            slope,
            intercept,
            r_squared,
            samples: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_path() -> ScalarPath {
        let mut p = ScalarPath::new(0.0, 2.0);
        p.record(1.0, 4.0);
        p.record(3.0, 0.0);
        p.finish(5.0);
        p
    }

    #[test]
    fn time_average_piecewise() {
        let p = example_path();
        // 2*1 + 4*2 + 0*2 = 10 over 5
        assert!((p.time_average_values() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_average_subwindow() {
        let p = example_path();
        // over [1, 3]: constant 4
        assert!((p.time_average_over(1.0, 3.0) - 4.0).abs() < 1e-12);
        // over [2, 4]: 4*1 + 0*1 over 2
        assert!((p.time_average_over(2.0, 4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn value_at_lookup() {
        let p = example_path();
        assert_eq!(p.value_at(0.0), 2.0);
        assert_eq!(p.value_at(0.5), 2.0);
        assert_eq!(p.value_at(1.0), 4.0);
        assert_eq!(p.value_at(2.9), 4.0);
        assert_eq!(p.value_at(4.9), 0.0);
        assert_eq!(p.value_at(-1.0), 2.0);
    }

    #[test]
    fn min_max_last() {
        let p = example_path();
        assert_eq!(p.max_value(), 4.0);
        assert_eq!(p.min_value(), 0.0);
        assert_eq!(p.last_value(), 0.0);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn record_rejects_time_going_backwards() {
        let mut p = ScalarPath::new(0.0, 1.0);
        p.record(2.0, 1.0);
        p.record(1.0, 1.0);
    }

    #[test]
    fn trend_of_linear_path_recovers_slope() {
        let mut p = ScalarPath::new(0.0, 0.0);
        for i in 1..=100 {
            let t = i as f64;
            p.record(t, 3.0 * t + 1.0);
        }
        p.finish(100.0);
        let trend = p.trend(0.5);
        assert!((trend.slope - 3.0).abs() < 0.05, "slope {}", trend.slope);
        assert!(trend.r_squared > 0.99);
    }

    #[test]
    fn trend_of_flat_path_is_zero() {
        let mut p = ScalarPath::new(0.0, 5.0);
        p.record(10.0, 5.0);
        p.finish(100.0);
        let trend = p.trend(0.5);
        assert!(trend.slope.abs() < 1e-9);
    }

    #[test]
    fn trend_estimate_degenerate_inputs() {
        let t = TrendEstimate::from_samples(&[]);
        assert_eq!(t.slope, 0.0);
        let t = TrendEstimate::from_samples(&[(1.0, 7.0)]);
        assert_eq!(t.intercept, 7.0);
        let t = TrendEstimate::from_samples(&[(1.0, 7.0), (1.0, 9.0)]);
        assert_eq!(t.slope, 0.0);
    }

    #[test]
    fn fraction_at_or_below_and_upcrossings() {
        let p = example_path();
        // value <= 2 during [0,1) and [3,5]: 3 of 5 time units
        assert!((p.fraction_at_or_below(2.0) - 0.6).abs() < 1e-12);
        assert_eq!(p.upcrossings_of(2.0), 1);
        assert_eq!(p.upcrossings_of(10.0), 0);
    }

    #[test]
    fn resample_endpoints() {
        let p = example_path();
        let s = p.resample(10);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], (0.0, 2.0));
        assert_eq!(s[10].0, 5.0);
        assert_eq!(s[10].1, 0.0);
    }
}
