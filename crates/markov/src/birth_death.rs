//! Birth–death chains: classification and stationary distributions.
//!
//! Two special cases of the P2P model reduce to birth–death chains: the
//! `K = 1` network of Example 1 (in the regime where the type-∅ population is
//! the only meaningful coordinate) and the top layer of the `µ = ∞` watched
//! process of Section VIII-D, whose null recurrence is the paper's borderline
//! result. This module provides exact tools for such chains.

use crate::MarkovError;

/// Recurrence classification of a countable-state chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recurrence {
    /// Positive recurrent: a stationary distribution exists.
    PositiveRecurrent,
    /// Null recurrent: returns are certain but take infinite expected time.
    NullRecurrent,
    /// Transient: with positive probability the chain never returns.
    Transient,
}

/// A birth–death CTMC on `{0, 1, 2, …}` with state-dependent birth rate
/// `λ(n)` and death rate `µ(n)` (with `µ(0) = 0` implicitly).
pub struct BirthDeath<Fb, Fd>
where
    Fb: Fn(u64) -> f64,
    Fd: Fn(u64) -> f64,
{
    birth: Fb,
    death: Fd,
}

impl<Fb, Fd> BirthDeath<Fb, Fd>
where
    Fb: Fn(u64) -> f64,
    Fd: Fn(u64) -> f64,
{
    /// Creates a birth–death chain from its rate functions.
    pub fn new(birth: Fb, death: Fd) -> Self {
        BirthDeath { birth, death }
    }

    /// Birth rate at `n`.
    #[must_use]
    pub fn birth_rate(&self, n: u64) -> f64 {
        (self.birth)(n)
    }

    /// Death rate at `n` (forced to 0 at the origin).
    #[must_use]
    pub fn death_rate(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            (self.death)(n)
        }
    }

    /// Classifies the chain by examining the standard birth–death series up
    /// to `horizon` states (the decision is numerical: the series are deemed
    /// convergent/divergent by their partial sums at the horizon).
    ///
    /// * The chain is positive recurrent iff `Σ π̃(n)` converges, where
    ///   `π̃(n) = Π_{k<n} λ(k)/µ(k+1)`.
    /// * It is recurrent (possibly null) iff `Σ 1/(λ(n) π̃(n))` diverges.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if a rate is negative or not
    /// finite, or if a death rate is zero for some `n ≥ 1` (the chain would
    /// not be irreducible on the non-negative integers).
    pub fn classify(&self, horizon: u64) -> Result<Recurrence, MarkovError> {
        let mut pi_tilde = 1.0_f64; // un-normalised stationary weight of state n
        let mut pi_sum = 1.0_f64;
        let mut escape_sum = 0.0_f64; // sum of 1/(lambda_n pi_tilde_n)
        for n in 0..horizon {
            let b = self.birth_rate(n);
            let d = self.death_rate(n + 1);
            if !(b.is_finite() && b >= 0.0 && d.is_finite() && d >= 0.0) {
                return Err(MarkovError::InvalidParameter(format!(
                    "rates at n={n} must be finite and non-negative"
                )));
            }
            if b == 0.0 {
                // Birth stops: the chain is confined to a finite set, hence
                // positive recurrent.
                return Ok(Recurrence::PositiveRecurrent);
            }
            if d == 0.0 {
                return Err(MarkovError::InvalidParameter(format!(
                    "death rate at n={} must be positive",
                    n + 1
                )));
            }
            escape_sum += 1.0 / (b * pi_tilde);
            pi_tilde *= b / d;
            pi_sum += pi_tilde;
            if !pi_sum.is_finite() {
                break;
            }
        }
        // Heuristic numerical thresholds: the model-level callers use rate
        // functions with geometric behaviour, for which these are decisive.
        let pi_converges = pi_sum.is_finite() && pi_tilde < 1e-8;
        let escape_diverges = escape_sum > 1e8 || !escape_sum.is_finite();
        Ok(if pi_converges {
            Recurrence::PositiveRecurrent
        } else if escape_diverges {
            Recurrence::NullRecurrent
        } else {
            // Neither: decide by comparing asymptotic drift.
            let n = horizon;
            if self.birth_rate(n) > self.death_rate(n) {
                Recurrence::Transient
            } else {
                Recurrence::NullRecurrent
            }
        })
    }

    /// Stationary distribution truncated to `{0, …, max_state}`, normalised
    /// over that range. Exact for chains that are positive recurrent and
    /// essentially supported below the truncation point.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] on invalid rates.
    pub fn stationary_truncated(&self, max_state: u64) -> Result<Vec<f64>, MarkovError> {
        let mut weights = Vec::with_capacity(max_state as usize + 1);
        let mut w = 1.0_f64;
        weights.push(w);
        for n in 0..max_state {
            let b = self.birth_rate(n);
            let d = self.death_rate(n + 1);
            if !(b.is_finite() && b >= 0.0 && d.is_finite() && d > 0.0) {
                return Err(MarkovError::InvalidParameter(format!(
                    "invalid rates at n={n}"
                )));
            }
            w *= b / d;
            weights.push(w);
        }
        let total: f64 = weights.iter().sum();
        Ok(weights.into_iter().map(|x| x / total).collect())
    }

    /// Mean of the truncated stationary distribution.
    ///
    /// # Errors
    ///
    /// See [`BirthDeath::stationary_truncated`].
    pub fn stationary_mean_truncated(&self, max_state: u64) -> Result<f64, MarkovError> {
        let pi = self.stationary_truncated(max_state)?;
        Ok(pi.iter().enumerate().map(|(n, p)| n as f64 * p).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_classification() {
        // rho < 1: positive recurrent
        let stable = BirthDeath::new(|_| 0.5, |_| 1.0);
        assert_eq!(
            stable.classify(5_000).unwrap(),
            Recurrence::PositiveRecurrent
        );
        // rho > 1: transient
        let unstable = BirthDeath::new(|_| 2.0, |_| 1.0);
        assert_eq!(unstable.classify(5_000).unwrap(), Recurrence::Transient);
        // rho = 1: null recurrent
        let critical = BirthDeath::new(|_| 1.0, |_| 1.0);
        assert_eq!(critical.classify(5_000).unwrap(), Recurrence::NullRecurrent);
    }

    #[test]
    fn mm_infinity_is_positive_recurrent() {
        let q = BirthDeath::new(|_| 3.0, |n| n as f64);
        assert_eq!(q.classify(5_000).unwrap(), Recurrence::PositiveRecurrent);
    }

    #[test]
    fn mm1_stationary_distribution_is_geometric() {
        let q = BirthDeath::new(|_| 0.5, |_| 1.0);
        let pi = q.stationary_truncated(200).unwrap();
        // pi(n) = (1 - rho) rho^n with rho = 0.5
        for (n, &p) in pi.iter().take(10).enumerate() {
            let expected = 0.5 * 0.5_f64.powi(n as i32);
            assert!((p - expected).abs() < 1e-9, "pi[{n}] = {p}");
        }
        let mean = q.stationary_mean_truncated(200).unwrap();
        assert!((mean - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mm_infinity_stationary_is_poisson() {
        let q = BirthDeath::new(|_| 2.0, |n| n as f64);
        let pi = q.stationary_truncated(100).unwrap();
        let expected0 = (-2.0_f64).exp();
        assert!((pi[0] - expected0).abs() < 1e-9);
        let mean = q.stationary_mean_truncated(100).unwrap();
        assert!((mean - 2.0).abs() < 1e-6);
    }

    #[test]
    fn finite_chain_is_positive_recurrent() {
        // Births stop at 10.
        let q = BirthDeath::new(|n| if n < 10 { 1.0 } else { 0.0 }, |_| 1.0);
        assert_eq!(q.classify(1_000).unwrap(), Recurrence::PositiveRecurrent);
    }

    #[test]
    fn invalid_rates_rejected() {
        let q = BirthDeath::new(|_| 1.0, |_| 0.0);
        assert!(q.classify(100).is_err());
        assert!(q.stationary_truncated(10).is_err());
        let q = BirthDeath::new(|_| f64::NAN, |_| 1.0);
        assert!(q.classify(100).is_err());
    }

    #[test]
    fn death_rate_zero_at_origin() {
        let q = BirthDeath::new(|_| 1.0, |_| 5.0);
        assert_eq!(q.death_rate(0), 0.0);
        assert_eq!(q.death_rate(1), 5.0);
    }
}
