//! Property tests for the Walker/Vose alias table: sampled frequencies must
//! match the build weights within statistical tolerance, zero-weight
//! categories must never be drawn, and degenerate inputs must be rejected —
//! for arbitrary weight vectors, not just the hand-picked unit-test cases.

use markov::alias::AliasTable;
use markov::poisson::CumulativeWeights;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Weight vectors with at least one strictly positive entry, mixing zero
/// and positive weights across several magnitudes.
fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![Just(0.0), 0.01f64..10.0, 10.0f64..1_000.0],
        1..12,
    )
    .prop_map(|mut w| {
        if w.iter().all(|&x| x == 0.0) {
            w[0] = 1.0;
        }
        w
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sampled_frequencies_match_weights(weights in arb_weights(), seed in any::<u64>()) {
        let table = AliasTable::new(&weights).expect("positive total weight");
        prop_assert_eq!(table.len(), weights.len());
        let total: f64 = weights.iter().sum();
        let n = 60_000u64;
        let mut counts = vec![0u64; weights.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            if w == 0.0 {
                prop_assert_eq!(counts[i], 0, "zero-weight category {} drawn", i);
            } else {
                // 5σ binomial tolerance plus an absolute floor for tiny p.
                let sigma = (expected * (1.0 - expected) / n as f64).sqrt();
                prop_assert!(
                    (observed - expected).abs() < 5.0 * sigma + 2e-3,
                    "category {}: observed {}, expected {}",
                    i, observed, expected
                );
            }
        }
    }

    #[test]
    fn alias_and_cumulative_samplers_agree_in_distribution(
        weights in arb_weights(),
        seed in any::<u64>(),
    ) {
        // The two samplers consume draws differently but must target the
        // same categorical law: compare their empirical means of the
        // sampled index.
        let alias = AliasTable::new(&weights).expect("positive total weight");
        let cum = CumulativeWeights::new(&weights).expect("positive total weight");
        let n = 40_000;
        let mut rng = StdRng::seed_from_u64(seed);
        let mean_alias: f64 =
            (0..n).map(|_| alias.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let mean_cum: f64 =
            (0..n).map(|_| cum.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let spread = weights.len() as f64;
        prop_assert!(
            (mean_alias - mean_cum).abs() < 0.05 * spread + 5.0 * spread / (n as f64).sqrt(),
            "alias mean {} vs cumulative mean {}",
            mean_alias,
            mean_cum
        );
    }

    #[test]
    fn degenerate_single_weight_is_always_drawn(w in 0.001f64..1e6, seed in any::<u64>()) {
        let table = AliasTable::new(&[w]).expect("one positive weight");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn all_zero_and_invalid_weights_are_rejected(n in 0usize..8) {
        let zeros = vec![0.0; n];
        prop_assert!(AliasTable::new(&zeros).is_none());
        let mut table = AliasTable::default();
        prop_assert!(!table.rebuild(&zeros));
        prop_assert!(table.is_empty());
    }
}
