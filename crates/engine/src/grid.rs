//! Phase-diagram grids: the `(λ₀, µ, γ, K)` rectangle and diagram types.
//! Rectangles are swept through the replication engine with
//! [`crate::Workload::grid`] on a [`crate::Session`], which tabulates
//! majority-vote verdicts per cell into a [`PhaseDiagram`].

use crate::labels;
use crate::replicate::ScenarioOutcome;
use serde::{Deserialize, Serialize};

/// One labelled grid axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// Axis label used in tables and artifacts (e.g. `"λ0"`).
    pub label: String,
    /// The values swept along the axis.
    pub values: Vec<f64>,
}

impl Axis {
    /// An axis over explicit values.
    #[must_use]
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Axis {
            label: label.into(),
            values,
        }
    }

    /// An axis of `steps` evenly spaced values over `[lo, hi]` (inclusive).
    #[must_use]
    pub fn linspace(label: impl Into<String>, lo: f64, hi: f64, steps: usize) -> Self {
        assert!(steps >= 1, "an axis needs at least one value");
        let values = if steps == 1 {
            vec![lo]
        } else {
            (0..steps)
                .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
                .collect()
        };
        Axis {
            label: label.into(),
            values,
        }
    }

    /// A single-value axis (a fixed parameter).
    #[must_use]
    pub fn fixed(label: impl Into<String>, value: f64) -> Self {
        Axis {
            label: label.into(),
            values: vec![value],
        }
    }
}

/// A rectangle of parameter points: the cartesian product
/// `pieces × mu × gamma × lambda0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Fresh-peer arrival rates (λ₀ axis).
    pub lambda0: Axis,
    /// Contact rates (µ axis).
    pub mu: Axis,
    /// Seed departure rates (γ axis).
    pub gamma: Axis,
    /// File sizes (K values).
    pub pieces: Vec<usize>,
}

impl GridSpec {
    /// Number of cells in the rectangle.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pieces.len()
            * self.mu.values.len()
            * self.gamma.values.len()
            * self.lambda0.values.len()
    }

    /// Returns `true` if any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One evaluated grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseCell {
    /// File size at the cell.
    pub pieces: usize,
    /// Contact rate at the cell.
    pub mu: f64,
    /// Seed departure rate at the cell.
    pub gamma: f64,
    /// Fresh-peer arrival rate at the cell.
    pub lambda0: f64,
    /// The engine outcome (theory verdict, votes, statistics).
    pub outcome: ScenarioOutcome,
}

impl PhaseCell {
    /// The single character used in ASCII phase diagrams: `·` stable and
    /// agreeing, `#` transient and agreeing, `B` borderline, `?` mismatch
    /// or indeterminate (the canonical [`labels::agreement_glyph`]
    /// mapping).
    #[must_use]
    pub fn glyph(&self) -> char {
        labels::agreement_glyph(self.outcome.theory, self.outcome.majority)
    }
}

/// An evaluated phase diagram over a [`GridSpec`] rectangle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDiagram {
    /// The swept rectangle.
    pub spec: GridSpec,
    /// Evaluated cells in `pieces`-major, then `mu`, `gamma`, `lambda0`
    /// order. Cells whose parameter construction failed are absent.
    pub cells: Vec<PhaseCell>,
    /// Number of grid points whose parameters could not be constructed.
    pub skipped: usize,
}

impl PhaseDiagram {
    /// Cells where the majority vote agrees with theory (borderline cells
    /// count as agreeing).
    #[must_use]
    pub fn agreements(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.agrees).count()
    }

    /// Cells where the majority vote contradicts a decisive theory verdict.
    #[must_use]
    pub fn mismatches(&self) -> usize {
        self.cells.iter().filter(|c| !c.outcome.agrees).count()
    }

    /// Number of evaluated cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no cells were evaluated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Renders one ASCII map per `(K, µ)` slice: rows are γ (largest on
    /// top), columns are λ₀. Skipped cells render as blanks.
    #[must_use]
    pub fn render(&self) -> String {
        // Cells carry their rectangle position as `scenario_id` (the
        // linear cell index); index them once instead of scanning the
        // cell list per glyph.
        let mut by_linear_index: Vec<Option<&PhaseCell>> = vec![None; self.spec.len()];
        for cell in &self.cells {
            if let Some(slot) = by_linear_index.get_mut(cell.outcome.scenario_id as usize) {
                *slot = Some(cell);
            }
        }
        let (n_mu, n_gamma, n_lambda) = (
            self.spec.mu.values.len(),
            self.spec.gamma.values.len(),
            self.spec.lambda0.values.len(),
        );

        let mut out = String::new();
        out.push_str(labels::GLYPH_LEGEND);
        out.push('\n');
        for (ki, &k) in self.spec.pieces.iter().enumerate() {
            for (mi, &mu) in self.spec.mu.values.iter().enumerate() {
                out.push_str(&format!(
                    "K = {k}, {} = {mu}  (rows: {} top = largest, columns: {})\n",
                    self.spec.mu.label, self.spec.gamma.label, self.spec.lambda0.label
                ));
                for (gi, &gamma) in self.spec.gamma.values.iter().enumerate().rev() {
                    out.push_str(&format!("{gamma:>10.3} | "));
                    for li in 0..n_lambda {
                        let linear = ((ki * n_mu + mi) * n_gamma + gi) * n_lambda + li;
                        let glyph = by_linear_index[linear].map_or(' ', |c| c.glyph());
                        out.push(glyph);
                        out.push(' ');
                    }
                    out.push('\n');
                }
                out.push_str(&format!("{:>10}   ", ""));
                for &lambda0 in &self.spec.lambda0.values {
                    out.push_str(&format!("{lambda0:<4.1}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Looks up the cell at exact coordinates, if it was evaluated.
    #[must_use]
    pub fn cell(&self, pieces: usize, mu: f64, gamma: f64, lambda0: f64) -> Option<&PhaseCell> {
        self.cells
            .iter()
            .find(|c| c.pieces == pieces && c.mu == mu && c.gamma == gamma && c.lambda0 == lambda0)
    }
}

impl core::fmt::Display for PhaseDiagram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::session::{Session, Workload};
    use swarm::{StabilityVerdict, SwarmParams};

    /// The Session-backed equivalent of the old `run_grid` free function,
    /// kept as a local helper so these unit tests read the same.
    fn run_grid<F>(spec: &GridSpec, make_params: F, config: &EngineConfig) -> PhaseDiagram
    where
        F: Fn(usize, f64, f64, f64) -> Option<SwarmParams>,
    {
        Session::builder()
            .config(*config)
            .workload(Workload::grid(spec, make_params))
            .build()
            .expect("valid grid")
            .run()
            .into_grid()
            .expect("grid workload")
    }

    fn example1_params(_k: usize, mu: f64, gamma: f64, lambda0: f64) -> Option<SwarmParams> {
        SwarmParams::builder(1)
            .seed_rate(1.0)
            .contact_rate(mu)
            .seed_departure_rate(gamma)
            .fresh_arrivals(lambda0)
            .build()
            .ok()
    }

    fn quick_config() -> EngineConfig {
        EngineConfig::default()
            .with_replications(3)
            .with_horizon(300.0)
            .with_master_seed(5)
            .with_jobs(2)
    }

    #[test]
    fn linspace_endpoints_and_count() {
        let axis = Axis::linspace("x", 1.0, 3.0, 5);
        assert_eq!(axis.values, vec![1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(Axis::linspace("x", 2.0, 9.0, 1).values, vec![2.0]);
        assert_eq!(Axis::fixed("y", 4.0).values, vec![4.0]);
    }

    #[test]
    fn grid_covers_stable_and_transient_corners() {
        let spec = GridSpec {
            lambda0: Axis::new("λ0", vec![0.5, 4.0]),
            mu: Axis::fixed("µ", 1.0),
            gamma: Axis::new("γ", vec![2.0, 8.0]),
            pieces: vec![1],
        };
        assert_eq!(spec.len(), 4);
        let diagram = run_grid(&spec, example1_params, &quick_config());
        assert_eq!(diagram.len(), 4);
        assert_eq!(diagram.skipped, 0);
        let rendered = diagram.render();
        assert!(rendered.contains('·'), "stable corner present:\n{rendered}");
        assert!(
            rendered.contains('#'),
            "transient corner present:\n{rendered}"
        );
        assert!(diagram.agreements() >= 3, "{rendered}");
        // λ0 = 0.5 < U_s/(1−µ/γ) at both γ values: theory says stable.
        let cell = diagram.cell(1, 1.0, 2.0, 0.5).expect("cell evaluated");
        assert_eq!(cell.outcome.theory, StabilityVerdict::PositiveRecurrent);
    }

    #[test]
    fn failed_cells_are_skipped_with_stable_ids() {
        let spec = GridSpec {
            lambda0: Axis::new("λ0", vec![0.5, 1.0]),
            mu: Axis::fixed("µ", 1.0),
            gamma: Axis::fixed("γ", 2.0),
            pieces: vec![1],
        };
        // Reject the first cell; the second must keep scenario id 1.
        let diagram = run_grid(
            &spec,
            |k, mu, gamma, lambda0| {
                if lambda0 < 0.75 {
                    None
                } else {
                    example1_params(k, mu, gamma, lambda0)
                }
            },
            &quick_config(),
        );
        assert_eq!(diagram.skipped, 1);
        assert_eq!(diagram.len(), 1);
        assert_eq!(diagram.cells[0].outcome.scenario_id, 1);
    }
}
