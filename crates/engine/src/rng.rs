//! Deterministic per-replication random streams.
//!
//! The seed crate's sweep runner seeded point `i` with `base + i`, so two
//! sweeps whose bases differ by less than the point count *shared* streams
//! between different parameter points — exactly the kind of silent
//! correlation Monte-Carlo verdicts must not have. The engine instead gives
//! every `(scenario, replication)` pair its own ChaCha stream:
//!
//! * the 256-bit **key** is expanded from `(master seed, replication id)`
//!   through the (bijective) SplitMix64 finalizer, so distinct replication
//!   ids always produce distinct keys for a fixed master seed;
//! * the ChaCha **stream id** is the scenario id, so distinct scenarios use
//!   provably disjoint keystreams even under the same key.
//!
//! Because a replication's stream depends only on these three values — not
//! on which worker thread happens to run it — batch results are bit-for-bit
//! reproducible at any parallelism level.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Domain-separation constant folded into every derived key.
const DOMAIN: u64 = 0x7032_7065_6e67_696e; // "p2pengin"

/// One step of the SplitMix64 output function (bijective on `u64`).
fn splitmix_finalize(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the 256-bit ChaCha key for `(master_seed, replication)`.
///
/// Injective in `replication` for a fixed master seed: the first expanded
/// word is a bijective image of `replication`.
#[must_use]
pub fn derive_seed(master_seed: u64, replication: u64) -> [u8; 32] {
    let mut state = splitmix_finalize(master_seed ^ DOMAIN) ^ replication;
    let mut seed = [0u8; 32];
    for chunk in seed.chunks_mut(8) {
        state = splitmix_finalize(state);
        chunk.copy_from_slice(&state.to_le_bytes());
    }
    seed
}

/// The independent random stream of one replication of one scenario.
///
/// Distinct `(scenario_id, replication)` pairs get provably or
/// cryptographically-separated streams (see the module docs); the worker
/// that executes the replication plays no part in the derivation.
#[must_use]
pub fn replication_rng(master_seed: u64, scenario_id: u64, replication: u64) -> ChaCha12Rng {
    let mut rng = ChaCha12Rng::from_seed(derive_seed(master_seed, replication));
    rng.set_stream(scenario_id);
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn first_words(master: u64, scenario: u64, replication: u64) -> [u64; 4] {
        let mut rng = replication_rng(master, scenario, replication);
        [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ]
    }

    #[test]
    fn streams_are_reproducible() {
        assert_eq!(first_words(1, 2, 3), first_words(1, 2, 3));
    }

    #[test]
    fn any_coordinate_change_moves_the_stream() {
        let base = first_words(1, 2, 3);
        assert_ne!(base, first_words(2, 2, 3), "master seed");
        assert_ne!(base, first_words(1, 3, 3), "scenario id");
        assert_ne!(base, first_words(1, 2, 4), "replication id");
    }

    #[test]
    fn adjacent_scenarios_and_replications_do_not_collide() {
        // The failure mode of the old `seed + i` scheme: the stream of
        // (scenario s, replication r) must not equal any nearby pair's.
        let mut seen = std::collections::HashSet::new();
        for scenario in 0..16u64 {
            for replication in 0..16u64 {
                let words = first_words(0xA11CE, scenario, replication);
                assert!(
                    seen.insert(words),
                    "collision at ({scenario}, {replication})"
                );
            }
        }
    }

    #[test]
    fn derived_keys_differ_per_replication() {
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }
}
