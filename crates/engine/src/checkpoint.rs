//! Crash-consistent checkpoint files for interruptible sessions.
//!
//! A checkpoint captures everything the in-order delivery frontier has
//! consumed so far: the completed-prefix index, the merged Welford /
//! [`crate::ClassVotes`] aggregation state of every scenario the frontier
//! has touched, the quarantined failures, and a digest binding the file to
//! the exact config + workload that produced it. Because the engine
//! aggregates in deterministic replication order, that state is identical
//! at any worker count — so a checkpoint written at frontier *f* is the
//! same bytes whether the run used 1 worker or 16, and a resumed run
//! finishes with artifacts byte-identical to an uninterrupted one.
//!
//! Crash consistency comes from two mechanisms:
//!
//! * **write-to-temp-then-rename** — the file is fully written and synced
//!   to `<path>.tmp`, then atomically renamed over `<path>`, so a kill at
//!   any instant leaves either the previous checkpoint or the new one,
//!   never a torn file;
//! * **a trailing FNV-1a checksum over the whole body** — a torn or
//!   bit-rotted file is rejected as [`crate::Error::CheckpointCorrupt`]
//!   instead of silently resuming from garbage.
//!
//! Floats are serialized as [`f64::to_bits`] hex, so restored Welford
//! state is bit-exact — the foundation of the byte-identical resume
//! guarantee. The format is a versioned line-oriented text file (see
//! `save`), deliberately hand-rolled like every other artifact in this
//! workspace.

use crate::error::Error;
use crate::replicate::ClassVotes;
use crate::session::ReplicationFailure;
use crate::stats::Welford;
use std::io::Write;
use std::path::{Path, PathBuf};
use swarm::StabilityVerdict;

/// Where and how often a session writes checkpoints.
///
/// Passed to [`crate::SessionBuilder::checkpoint`]; the session then
/// rewrites `path` (atomically) every `every` delivered records and once
/// more at the end of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint file path (a sibling `<path>.tmp` is used transiently).
    pub path: PathBuf,
    /// Rewrite the checkpoint every this many delivered records
    /// (clamped to at least 1).
    pub every: u64,
}

impl CheckpointSpec {
    /// A spec that checkpoints after every delivered record.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            path: path.into(),
            every: 1,
        }
    }

    /// Sets the checkpoint interval in delivered records (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_every(mut self, every: u64) -> Self {
        self.every = every.max(1);
        self
    }
}

/// Snapshot of one scenario's incremental aggregation state. One struct
/// covers both workload kinds; fields the kind does not use are zero.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AggSnapshot {
    pub(crate) theory: StabilityVerdict,
    pub(crate) votes: ClassVotes,
    pub(crate) slope: Welford,
    pub(crate) average: Welford,
    /// Events-per-replication accumulator (agent scenarios only).
    pub(crate) events: Welford,
    /// Replications agreeing with theory (CTMC scenarios only).
    pub(crate) agreeing: u32,
    /// Replications clipped by `max_events` (agent scenarios only).
    pub(crate) truncated: u32,
    /// Successful replications pushed.
    pub(crate) count: u32,
    /// Failed (quarantined) replications.
    pub(crate) failed: u32,
}

/// Everything a checkpoint file round-trips.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointData {
    /// Digest binding the file to one config + workload (see
    /// `Session::checkpoint_digest`).
    pub(crate) digest: u64,
    /// Workload family: `"ctmc"` (CTMC and grid) or `"agent"` (agent and
    /// coded).
    pub(crate) kind: &'static str,
    /// Total records the full stream delivers.
    pub(crate) total: u64,
    /// Replications per scenario.
    pub(crate) reps: u64,
    /// Completed prefix: records delivered in order so far.
    pub(crate) frontier: u64,
    /// Retries accumulated so far (under `FailurePolicy::Retry`).
    pub(crate) retries: u64,
    /// Quarantined failures so far, in delivery order.
    pub(crate) failures: Vec<ReplicationFailure>,
    /// Aggregation state of every scenario the frontier has touched:
    /// one full snapshot per completed scenario, plus one partial
    /// snapshot iff the frontier stopped mid-scenario.
    pub(crate) snapshots: Vec<AggSnapshot>,
}

/// Format version. v2 added the Welford non-finite rejection counter to
/// every accumulator (6 tokens per Welford instead of 5); v1 files are
/// rejected as corrupt rather than silently zero-filling the new field.
const HEADER: &str = "p2p-checkpoint v2";

/// FNV-1a 64-bit hash, the workspace's standard content digest.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn verdict_name(v: StabilityVerdict) -> &'static str {
    match v {
        StabilityVerdict::PositiveRecurrent => "positive-recurrent",
        StabilityVerdict::Transient => "transient",
        StabilityVerdict::Borderline => "borderline",
    }
}

fn verdict_from(name: &str) -> Option<StabilityVerdict> {
    match name {
        "positive-recurrent" => Some(StabilityVerdict::PositiveRecurrent),
        "transient" => Some(StabilityVerdict::Transient),
        "borderline" => Some(StabilityVerdict::Borderline),
        _ => None,
    }
}

fn welford_fields(w: &Welford, out: &mut String) {
    let (count, non_finite, mean, m2, min, max) = w.to_raw_parts();
    out.push_str(&format!(
        " {count} {non_finite} {:016x} {:016x} {:016x} {:016x}",
        mean.to_bits(),
        m2.to_bits(),
        min.to_bits(),
        max.to_bits()
    ));
}

/// Escapes a panic payload into one whitespace-free-prefix-safe line tail:
/// backslash, newline, and carriage return are backslash-escaped.
fn escape_payload(payload: &str) -> String {
    payload
        .replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape_payload(escaped: &str) -> String {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Renders the checkpoint body (everything above the checksum line).
fn render_body(data: &CheckpointData) -> String {
    let mut body = String::new();
    body.push_str(HEADER);
    body.push('\n');
    body.push_str(&format!("digest {:016x}\n", data.digest));
    body.push_str(&format!("kind {}\n", data.kind));
    body.push_str(&format!("total {}\n", data.total));
    body.push_str(&format!("reps {}\n", data.reps));
    body.push_str(&format!("frontier {}\n", data.frontier));
    body.push_str(&format!("retries {}\n", data.retries));
    body.push_str(&format!("failures {}\n", data.failures.len()));
    for f in &data.failures {
        body.push_str(&format!(
            "failure {} {} {} {} {}\n",
            f.scenario_index,
            f.scenario_id,
            f.replication,
            f.attempts,
            escape_payload(&f.payload)
        ));
    }
    body.push_str(&format!("aggs {}\n", data.snapshots.len()));
    for s in &data.snapshots {
        let mut line = format!(
            "agg {} {} {} {} {} {} {} {}",
            verdict_name(s.theory),
            s.votes.stable,
            s.votes.growing,
            s.votes.indeterminate,
            s.agreeing,
            s.truncated,
            s.count,
            s.failed
        );
        welford_fields(&s.slope, &mut line);
        welford_fields(&s.average, &mut line);
        welford_fields(&s.events, &mut line);
        body.push_str(&line);
        body.push('\n');
    }
    body
}

/// Atomically writes `data` to `path` (via `<path>.tmp` + rename), with a
/// trailing FNV-1a checksum over the body.
pub(crate) fn save(path: &Path, data: &CheckpointData) -> std::io::Result<()> {
    let body = render_body(data);
    let checksum = fnv1a64(body.as_bytes());
    let mut tmp_path = path.as_os_str().to_owned();
    tmp_path.push(".tmp");
    let tmp_path = PathBuf::from(tmp_path);
    {
        let mut file = std::fs::File::create(&tmp_path)?;
        file.write_all(body.as_bytes())?;
        file.write_all(format!("checksum {checksum:016x}\n").as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp_path, path)
}

/// Parses and validates a checkpoint file. Digest *matching* is the
/// caller's job (the file's digest is returned verbatim); this function
/// only rejects unreadable or structurally corrupt files.
pub(crate) fn load(path: &Path) -> Result<CheckpointData, Error> {
    let display = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| Error::CheckpointIo {
        path: display.clone(),
        message: e.to_string(),
    })?;
    let corrupt = |message: String| Error::CheckpointCorrupt {
        path: display.clone(),
        message,
    };

    // Split off and verify the trailing checksum line first.
    let trimmed = text.strip_suffix('\n').unwrap_or(&text);
    let (body_end, checksum_line) = trimmed
        .rfind('\n')
        .map(|i| (&trimmed[..=i], &trimmed[i + 1..]))
        .ok_or_else(|| corrupt("file too short".into()))?;
    let recorded = checksum_line
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| corrupt(format!("bad checksum line `{checksum_line}`")))?;
    let actual = fnv1a64(body_end.as_bytes());
    if recorded != actual {
        return Err(corrupt(format!(
            "checksum mismatch (recorded {recorded:016x}, computed {actual:016x})"
        )));
    }

    fn next_line<'a>(
        lines: &mut std::str::Lines<'a>,
        what: &str,
        corrupt: &dyn Fn(String) -> Error,
    ) -> Result<&'a str, Error> {
        lines
            .next()
            .ok_or_else(|| corrupt(format!("missing `{what}` line")))
    }
    fn expect(
        lines: &mut std::str::Lines<'_>,
        prefix: &str,
        corrupt: &dyn Fn(String) -> Error,
    ) -> Result<String, Error> {
        let line = next_line(lines, prefix, corrupt)?;
        line.strip_prefix(prefix)
            .and_then(|rest| {
                rest.strip_prefix(' ')
                    .or(Some(rest).filter(|r| r.is_empty()))
            })
            .map(str::to_owned)
            .ok_or_else(|| corrupt(format!("expected `{prefix} …`, found `{line}`")))
    }
    let parse_u64 = |field: &str, value: String| -> Result<u64, Error> {
        value
            .parse::<u64>()
            .map_err(|e| corrupt(format!("bad {field} `{value}`: {e}")))
    };

    let mut lines = body_end.lines();
    let header = next_line(&mut lines, "header", &corrupt)?;
    if header != HEADER {
        return Err(corrupt(format!("bad header `{header}`")));
    }
    let digest = u64::from_str_radix(&expect(&mut lines, "digest", &corrupt)?, 16)
        .map_err(|e| corrupt(format!("bad digest: {e}")))?;
    let kind = match expect(&mut lines, "kind", &corrupt)?.as_str() {
        "ctmc" => "ctmc",
        "agent" => "agent",
        other => return Err(corrupt(format!("unknown kind `{other}`"))),
    };
    let total = parse_u64("total", expect(&mut lines, "total", &corrupt)?)?;
    let reps = parse_u64("reps", expect(&mut lines, "reps", &corrupt)?)?;
    let frontier = parse_u64("frontier", expect(&mut lines, "frontier", &corrupt)?)?;
    let retries = parse_u64("retries", expect(&mut lines, "retries", &corrupt)?)?;
    let failure_count = parse_u64("failures", expect(&mut lines, "failures", &corrupt)?)?;

    let mut failures = Vec::with_capacity(failure_count.min(1 << 16) as usize);
    for _ in 0..failure_count {
        let line = next_line(&mut lines, "failure", &corrupt)?;
        let rest = line
            .strip_prefix("failure ")
            .ok_or_else(|| corrupt(format!("expected `failure …`, found `{line}`")))?;
        let parts: Vec<&str> = rest.splitn(5, ' ').collect();
        if parts.len() != 5 {
            return Err(corrupt(format!(
                "failure line has {} fields, expected 5",
                parts.len()
            )));
        }
        let scenario_index = parts[0]
            .parse::<usize>()
            .map_err(|e| corrupt(format!("bad failure index: {e}")))?;
        let scenario_id = parse_u64("failure scenario_id", parts[1].to_owned())?;
        let replication = parts[2]
            .parse::<u32>()
            .map_err(|e| corrupt(format!("bad failure replication: {e}")))?;
        let attempts = parts[3]
            .parse::<u32>()
            .map_err(|e| corrupt(format!("bad failure attempts: {e}")))?;
        let payload = unescape_payload(parts[4]);
        failures.push(ReplicationFailure {
            scenario_index,
            scenario_id,
            replication,
            attempts,
            payload,
        });
    }

    let agg_count = parse_u64("aggs", expect(&mut lines, "aggs", &corrupt)?)?;
    let mut snapshots = Vec::with_capacity(agg_count.min(1 << 16) as usize);
    for _ in 0..agg_count {
        let line = next_line(&mut lines, "agg", &corrupt)?;
        let rest = line
            .strip_prefix("agg ")
            .ok_or_else(|| corrupt(format!("expected `agg …`, found `{line}`")))?;
        let tokens: Vec<&str> = rest.split(' ').collect();
        if tokens.len() != 8 + 18 {
            return Err(corrupt(format!(
                "agg line has {} fields, expected 26",
                tokens.len()
            )));
        }
        let theory = verdict_from(tokens[0])
            .ok_or_else(|| corrupt(format!("unknown verdict `{}`", tokens[0])))?;
        let int = |i: usize| -> Result<u32, Error> {
            tokens[i]
                .parse::<u32>()
                .map_err(|e| corrupt(format!("bad agg field {i}: {e}")))
        };
        let welford = |at: usize| -> Result<Welford, Error> {
            let count = tokens[at]
                .parse::<u64>()
                .map_err(|e| corrupt(format!("bad welford count: {e}")))?;
            let non_finite = tokens[at + 1]
                .parse::<u64>()
                .map_err(|e| corrupt(format!("bad welford non-finite count: {e}")))?;
            let mut bits = [0u64; 4];
            for (k, slot) in bits.iter_mut().enumerate() {
                *slot = u64::from_str_radix(tokens[at + 2 + k], 16)
                    .map_err(|e| corrupt(format!("bad welford bits: {e}")))?;
            }
            Ok(Welford::from_raw_parts(
                count,
                non_finite,
                f64::from_bits(bits[0]),
                f64::from_bits(bits[1]),
                f64::from_bits(bits[2]),
                f64::from_bits(bits[3]),
            ))
        };
        snapshots.push(AggSnapshot {
            theory,
            votes: ClassVotes {
                stable: int(1)?,
                growing: int(2)?,
                indeterminate: int(3)?,
            },
            agreeing: int(4)?,
            truncated: int(5)?,
            count: int(6)?,
            failed: int(7)?,
            slope: welford(8)?,
            average: welford(14)?,
            events: welford(20)?,
        });
    }

    if frontier > total {
        return Err(corrupt(format!(
            "frontier {frontier} exceeds total {total}"
        )));
    }
    if reps > 0 {
        let expected_snaps = frontier.div_ceil(reps);
        if snapshots.len() as u64 != expected_snaps {
            return Err(corrupt(format!(
                "{} agg snapshots for frontier {frontier} at {reps} \
                 replications per scenario (expected {expected_snaps})",
                snapshots.len()
            )));
        }
    }

    Ok(CheckpointData {
        digest,
        kind,
        total,
        reps,
        frontier,
        retries,
        failures,
        snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        let mut slope = Welford::new();
        let mut average = Welford::new();
        for i in 0..5 {
            slope.push((i as f64).sin());
            average.push(10.0 + i as f64 / 3.0);
        }
        CheckpointData {
            digest: 0xDEAD_BEEF_1234_5678,
            kind: "ctmc",
            total: 12,
            reps: 4,
            frontier: 5,
            retries: 2,
            failures: vec![ReplicationFailure {
                scenario_index: 0,
                scenario_id: 9,
                replication: 3,
                attempts: 2,
                payload: "boom with\nnewline and \\backslash".into(),
            }],
            snapshots: vec![
                AggSnapshot {
                    theory: StabilityVerdict::PositiveRecurrent,
                    votes: ClassVotes {
                        stable: 3,
                        growing: 0,
                        indeterminate: 0,
                    },
                    slope,
                    average,
                    events: Welford::new(),
                    agreeing: 3,
                    truncated: 0,
                    count: 3,
                    failed: 1,
                },
                AggSnapshot {
                    theory: StabilityVerdict::Transient,
                    votes: ClassVotes {
                        stable: 0,
                        growing: 1,
                        indeterminate: 0,
                    },
                    slope: Welford::new(),
                    average: Welford::new(),
                    events: Welford::new(),
                    agreeing: 1,
                    truncated: 0,
                    count: 1,
                    failed: 0,
                },
            ],
        }
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join("engine-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let data = sample();
        save(&path, &data).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, data);
        // No temp file left behind.
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_a_typed_error_not_garbage() {
        let dir = std::env::temp_dir().join("engine-ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        save(&path, &sample()).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip one digit inside the body.
        text = text.replacen("frontier 5", "frontier 6", 1);
        std::fs::write(&path, text).unwrap();
        match load(&path) {
            Err(Error::CheckpointCorrupt { message, .. }) => {
                assert!(message.contains("checksum"), "{message}");
            }
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = std::env::temp_dir().join("engine-ckpt-nope/does-not-exist.ckpt");
        match load(&path) {
            Err(Error::CheckpointIo { .. }) => {}
            other => panic!("expected CheckpointIo, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_corrupt() {
        let dir = std::env::temp_dir().join("engine-ckpt-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        save(&path, &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(load(&path), Err(Error::CheckpointCorrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spec_builder_clamps_interval() {
        let spec = CheckpointSpec::new("/tmp/x.ckpt").with_every(0);
        assert_eq!(spec.every, 1);
        assert_eq!(spec.path, PathBuf::from("/tmp/x.ckpt"));
    }
}
