//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] maps `(scenario id, replication)` stream keys — the same
//! keys that seed the random streams, never wall clock or worker identity —
//! to injected faults. Because the key is part of the work item rather than
//! the schedule, a chaos run is reproducible at any `--jobs` value: the
//! same replications fail, the same payloads surface, and the surviving
//! replications are bit-identical to a fault-free run.
//!
//! Four fault kinds cover the failure modes the session layer must
//! survive:
//!
//! - [`FaultKind::Panic`] — the replication panics on every attempt
//!   (a hard bug; only `Quarantine` can make progress past it).
//! - [`FaultKind::Transient`] — the replication panics on its first
//!   `failures` attempts and succeeds afterwards (a flaky resource;
//!   `Retry` converges, `Quarantine` records a failure).
//! - [`FaultKind::Stall`] — the replication sleeps before running (a slow
//!   worker; exercises reorder-window backpressure without changing any
//!   result).
//! - [`FaultKind::Nan`] — the replication runs normally but its tail
//!   metrics come back NaN (a poisoned estimator; exercises the session's
//!   non-finite rejection, which must turn the value into a typed
//!   invariant failure instead of a silently-NaN artifact).
//!
//! Injection happens inside the per-replication execution wrapper, *before*
//! the simulator draws from its stream, so a stalled or retried replication
//! still consumes exactly its own random stream.

use std::collections::BTreeMap;
use std::fmt;

/// What to inject at one `(scenario, replication)` stream key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic on every attempt.
    Panic,
    /// Panic on the first `failures` attempts, then succeed.
    Transient {
        /// Number of leading attempts that fail.
        failures: u32,
    },
    /// Sleep this many milliseconds before running (the replication then
    /// succeeds normally).
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Poison the replication's tail metrics to NaN on every attempt. The
    /// simulation itself runs (and consumes exactly its own stream); the
    /// session layer must catch the non-finite output and fail typed.
    Nan,
}

/// A deterministic schedule of injected faults, keyed by stream key.
///
/// ```
/// use engine::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .panic_at(0, 3)
///     .transient_at(0, 5, 2)
///     .stall_at(1, 0, 10);
/// assert_eq!(plan.get(0, 3), Some(FaultKind::Panic));
/// assert_eq!(plan.get(0, 5), Some(FaultKind::Transient { failures: 2 }));
/// assert_eq!(plan.get(2, 0), None);
/// assert_eq!(plan.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<(u64, u32), FaultKind>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Number of keyed faults in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Injects an unconditional panic at one stream key.
    #[must_use]
    pub fn panic_at(mut self, scenario_id: u64, replication: u32) -> Self {
        self.faults
            .insert((scenario_id, replication), FaultKind::Panic);
        self
    }

    /// Injects a transient fault (fail the first `failures` attempts, then
    /// succeed) at one stream key.
    #[must_use]
    pub fn transient_at(mut self, scenario_id: u64, replication: u32, failures: u32) -> Self {
        self.faults.insert(
            (scenario_id, replication),
            FaultKind::Transient { failures },
        );
        self
    }

    /// Injects a pre-run stall of `millis` milliseconds at one stream key.
    #[must_use]
    pub fn stall_at(mut self, scenario_id: u64, replication: u32, millis: u64) -> Self {
        self.faults
            .insert((scenario_id, replication), FaultKind::Stall { millis });
        self
    }

    /// Injects NaN metric corruption at one stream key.
    #[must_use]
    pub fn nan_at(mut self, scenario_id: u64, replication: u32) -> Self {
        self.faults
            .insert((scenario_id, replication), FaultKind::Nan);
        self
    }

    /// True when this stream key's metrics must be poisoned to NaN after
    /// the replication runs. [`FaultPlan::apply`] cannot express this fault
    /// — it fires before the simulation and can only sleep or panic — so
    /// the execution wrapper queries it separately, after the outcome
    /// exists but before any aggregation sees it.
    #[must_use]
    pub fn corrupts_metrics(&self, scenario_id: u64, replication: u32) -> bool {
        self.get(scenario_id, replication) == Some(FaultKind::Nan)
    }

    /// The fault registered at a stream key, if any.
    #[must_use]
    pub fn get(&self, scenario_id: u64, replication: u32) -> Option<FaultKind> {
        self.faults.get(&(scenario_id, replication)).copied()
    }

    /// Applies the fault (if any) registered for this stream key at the
    /// given zero-based attempt: sleeps for stalls, panics for panics and
    /// for transient faults whose failure budget has not yet elapsed.
    ///
    /// The panic payload is a deterministic `String` naming the stream key,
    /// so quarantined failure records are comparable across runs.
    pub fn apply(&self, scenario_id: u64, replication: u32, attempt: u32) {
        match self.get(scenario_id, replication) {
            None => {}
            Some(FaultKind::Stall { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            Some(FaultKind::Panic) => std::panic::panic_any(format!(
                "injected fault: panic at scenario {scenario_id} replication {replication}"
            )),
            Some(FaultKind::Transient { failures }) if attempt < failures => {
                std::panic::panic_any(format!(
                    "injected fault: transient failure {attempt} at \
                     scenario {scenario_id} replication {replication}"
                ));
            }
            Some(FaultKind::Transient { .. }) => {}
            // Metric corruption happens after the run, via
            // `corrupts_metrics` — nothing to do pre-run.
            Some(FaultKind::Nan) => {}
        }
    }

    /// Parses the CLI chaos specification: comma-separated entries of the
    /// form `[SCENARIO.]REPLICATION=KIND` where `KIND` is `panic`,
    /// `transient:N`, `stall:MS`, or `nan`. A bare replication index
    /// addresses scenario id 0.
    ///
    /// ```
    /// use engine::{FaultKind, FaultPlan};
    ///
    /// let plan = FaultPlan::parse("2=panic,7.1=transient:2,0.4=stall:25").unwrap();
    /// assert_eq!(plan.get(0, 2), Some(FaultKind::Panic));
    /// assert_eq!(plan.get(7, 1), Some(FaultKind::Transient { failures: 2 }));
    /// assert_eq!(plan.get(0, 4), Some(FaultKind::Stall { millis: 25 }));
    /// assert!(FaultPlan::parse("nope").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<Self, FaultParseError> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let bad = || FaultParseError {
                entry: entry.to_string(),
            };
            let (key, kind) = entry.split_once('=').ok_or_else(bad)?;
            let (scenario_id, replication) = match key.split_once('.') {
                Some((s, r)) => (
                    s.trim().parse::<u64>().map_err(|_| bad())?,
                    r.trim().parse::<u32>().map_err(|_| bad())?,
                ),
                None => (0, key.trim().parse::<u32>().map_err(|_| bad())?),
            };
            let kind = kind.trim();
            let fault = if kind == "panic" {
                FaultKind::Panic
            } else if kind == "nan" {
                FaultKind::Nan
            } else if let Some(n) = kind.strip_prefix("transient:") {
                FaultKind::Transient {
                    failures: n.trim().parse::<u32>().map_err(|_| bad())?,
                }
            } else if let Some(ms) = kind.strip_prefix("stall:") {
                FaultKind::Stall {
                    millis: ms.trim().parse::<u64>().map_err(|_| bad())?,
                }
            } else {
                return Err(bad());
            };
            plan.faults.insert((scenario_id, replication), fault);
        }
        Ok(plan)
    }

    /// Iterates over `((scenario_id, replication), kind)` entries in key
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u64, u32), &FaultKind)> {
        self.faults.iter()
    }
}

/// A chaos specification entry that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The offending entry, verbatim.
    pub entry: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad chaos entry `{}` (expected `[SCENARIO.]REP=panic|transient:N|stall:MS|nan`)",
            self.entry
        )
    }
}

impl std::error::Error for FaultParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_is_keyed_not_scheduled() {
        let plan = FaultPlan::new().transient_at(3, 1, 2);
        // Other keys are untouched at any attempt.
        plan.apply(3, 0, 0);
        plan.apply(0, 1, 0);
        // The keyed fault clears after its failure budget.
        plan.apply(3, 1, 2);
        plan.apply(3, 1, 7);
    }

    #[test]
    fn transient_panics_until_budget_elapses() {
        let plan = FaultPlan::new().transient_at(0, 0, 2);
        for attempt in 0..2 {
            let caught = std::panic::catch_unwind(|| plan.apply(0, 0, attempt));
            let payload = caught.expect_err("attempt within budget must panic");
            let message = payload
                .downcast_ref::<String>()
                .expect("payload is a String");
            assert!(message.contains("transient"), "{message}");
            assert!(message.contains("scenario 0 replication 0"), "{message}");
        }
    }

    #[test]
    fn panic_payload_names_the_stream_key() {
        let plan = FaultPlan::new().panic_at(9, 4);
        let payload = std::panic::catch_unwind(|| plan.apply(9, 4, 0)).expect_err("must panic");
        let message = payload.downcast_ref::<String>().unwrap();
        assert_eq!(message, "injected fault: panic at scenario 9 replication 4");
    }

    #[test]
    fn parse_round_trips_all_kinds() {
        let plan = FaultPlan::parse(" 1=panic , 2.3=transient:4 , 5.6=stall:7 , 8=nan ").unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.get(0, 1), Some(FaultKind::Panic));
        assert_eq!(plan.get(2, 3), Some(FaultKind::Transient { failures: 4 }));
        assert_eq!(plan.get(5, 6), Some(FaultKind::Stall { millis: 7 }));
        assert_eq!(plan.get(0, 8), Some(FaultKind::Nan));
        // `nan` never fires pre-run…
        plan.apply(0, 8, 0);
        // …it is queried as metric corruption instead, keyed exactly.
        assert!(plan.corrupts_metrics(0, 8));
        assert!(!plan.corrupts_metrics(0, 1));
        assert!(!plan.corrupts_metrics(8, 8));
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in ["x", "1", "1=boom", "1=transient:", "a.b=panic", "1=stall:x"] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.to_string().contains(bad.trim()), "{err}");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }
}
