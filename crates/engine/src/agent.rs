//! Agent-based scenario execution: the peer-level simulator's scenario
//! type and per-replication unit of work.
//!
//! The CTMC path ([`crate::replicate`]) enumerates all `2^K` peer types, so
//! it is capped at small `K` and cannot express per-peer features (policies,
//! retry speed-up, flash crowds, heterogeneous initial populations). The
//! scenario registry in `workload` compiles its specs into
//! [`AgentScenario`]s, which [`crate::Session`] replicates (via
//! [`crate::Workload::agent`]) with the same determinism contract as the
//! CTMC batches: one ChaCha stream per `(master seed, scenario id,
//! replication)`, aggregation in fixed replication order, bit-identical
//! results at any worker count.
//!
//! Truncated replications (runs that hit the simulator's `max_events`
//! safety valve before the horizon) are surfaced per scenario in
//! [`AgentOutcome::truncated_replications`] so a verdict derived from
//! clipped trajectories is never silently trusted.
//!
//! Session workers replicate through a per-worker [`SimScratch`] arena: the
//! simulator's peer table, sampling pools, and snapshot buffers are reused
//! across the replications each worker serves (fully so under the turbo
//! kernel), so a batch performs no per-replication reallocation once the
//! buffers reach the workload's high-water mark. The scratch never changes
//! the numbers — batches stay bit-identical at any worker count.

use crate::config::EngineConfig;
use crate::metrics::ReplicationTelemetry;
use crate::replicate::ClassVotes;
use crate::rng::replication_rng;
use crate::stats::Estimate;
use markov::{PathClass, PathClassifier};
use pieceset::PieceSet;
use serde::{Deserialize, Serialize};
use swarm::coded::{theorem15_classify, CodedGifts};
use swarm::sim::{AgentConfig, AgentSwarm, FlashCrowd, ShardPlan, SimScratch};
use swarm::{policy, stability, StabilityVerdict, SwarmError, SwarmParams};

/// One agent-simulator scenario to replicate: model parameters plus the
/// peer-level features the CTMC cannot express.
#[derive(Debug, Clone)]
pub struct AgentScenario {
    /// Stream key of the scenario, unique within a batch.
    pub id: u64,
    /// Label carried into outcomes and artifacts.
    pub label: String,
    /// Model parameters of the point.
    pub params: SwarmParams,
    /// Simulator configuration (watch piece, retry speed-up, snapshot
    /// interval, event cap, kernel).
    pub config: AgentConfig,
    /// Piece-selection policy, by [`policy::by_name`] name.
    pub policy: String,
    /// Initial population as `(type, count)` groups, expanded in order.
    pub initial: Vec<(PieceSet, usize)>,
    /// Scheduled flash crowds.
    pub flash: Vec<FlashCrowd>,
    /// Coded arrival mix of the Section VIII-B network-coded variant. When
    /// present, the scenario runs on [`swarm::sim::KernelKind::Coded`] or —
    /// for GF(2) — the bitsliced [`swarm::sim::KernelKind::CodedTurbo`]
    /// (`config.kernel` picks which), `params` acts as the base parameter
    /// set, and the theory verdict comes from Theorem 15 instead of
    /// Theorem 1.
    pub coding: Option<CodedGifts>,
    /// Intra-replication shard count override. `None` inherits
    /// [`EngineConfig::shards`]; an effective value above 1 runs this
    /// scenario's swarm through the sharded turbo driver
    /// ([`swarm::sim::ShardPlan`]), splitting one population across shard
    /// workers inside each replication.
    pub shards: Option<u32>,
    /// Synchronization-window override for the sharded driver. `None`
    /// inherits [`EngineConfig::sync_window`]; ignored when the effective
    /// shard count is 1.
    pub sync_window: Option<f64>,
}

impl AgentScenario {
    /// Creates a scenario with the default simulator configuration, the
    /// paper's random-useful policy, an empty system, and no flash crowds.
    #[must_use]
    pub fn new(id: u64, label: impl Into<String>, params: SwarmParams) -> Self {
        AgentScenario {
            id,
            label: label.into(),
            params,
            config: AgentConfig::default(),
            policy: "random-useful".to_owned(),
            initial: Vec::new(),
            flash: Vec::new(),
            coding: None,
            shards: None,
            sync_window: None,
        }
    }

    /// The initial population expanded into one collection per peer.
    #[must_use]
    pub fn initial_population(&self) -> Vec<PieceSet> {
        let total: usize = self.initial.iter().map(|(_, count)| count).sum();
        let mut peers = Vec::with_capacity(total);
        for &(pieces, count) in &self.initial {
            peers.extend(std::iter::repeat_n(pieces, count));
        }
        peers
    }

    /// Builds the configured simulator (validating config and policy).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] for an unknown policy name or
    /// an invalid simulator configuration.
    pub fn build_sim(&self) -> Result<AgentSwarm, SwarmError> {
        if let Some(gifts) = &self.coding {
            if self.policy != "random-useful" {
                return Err(SwarmError::InvalidParameter(format!(
                    "piece policy `{}` does not apply to the coded kernel \
                     (a coded upload is always a random linear combination)",
                    self.policy
                )));
            }
            let params = gifts.with_base(self.params.clone());
            // The bitsliced turbo kernel only handles GF(2);
            // `with_coded_turbo` rejects other field orders with a typed
            // error that surfaces through the session build.
            return if self.config.kernel == swarm::sim::KernelKind::CodedTurbo {
                AgentSwarm::with_coded_turbo(params, self.config)
            } else {
                AgentSwarm::with_coded(params, self.config)
            };
        }
        let policy = policy::by_name(&self.policy).ok_or_else(|| {
            SwarmError::InvalidParameter(format!("unknown piece policy `{}`", self.policy))
        })?;
        AgentSwarm::with_config(self.params.clone(), self.config, policy)
    }

    /// Fully validates the scenario: simulator configuration, policy,
    /// initial population, and flash schedule. What this accepts,
    /// [`run_agent_replication`] can run.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), SwarmError> {
        let sim = self.build_sim()?;
        sim.validate_run(&self.initial_population(), &self.flash)
    }

    /// The effective shard plan of this scenario under `config`: the
    /// scenario-level override (falling back to [`EngineConfig::shards`] /
    /// [`EngineConfig::sync_window`]) as a [`ShardPlan`] running its shard
    /// segments on `shard_jobs` workers, or `None` when the effective
    /// shard count is 1 (unsharded).
    #[must_use]
    pub fn shard_plan(&self, config: &EngineConfig, shard_jobs: usize) -> Option<ShardPlan> {
        let shards = self.shards.unwrap_or(config.shards);
        (shards > 1).then(|| {
            ShardPlan::new(shards, self.sync_window.unwrap_or(config.sync_window))
                .with_jobs(shard_jobs)
        })
    }

    /// Validates the sharding settings this scenario would run with under
    /// `config` (the sharded driver supports the turbo kernel only, and
    /// needs a positive finite synchronization window). Unsharded
    /// scenarios always pass.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] describing the first
    /// incompatibility.
    pub fn validate_sharding(&self, config: &EngineConfig) -> Result<(), SwarmError> {
        match self.shard_plan(config, 1) {
            Some(plan) => self.build_sim()?.validate_sharded(&plan),
            None => Ok(()),
        }
    }
}

/// The result of one agent-simulator replication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentReplication {
    /// Replication index within the scenario.
    pub replication: u32,
    /// Classification of the simulated peer-count path.
    pub class: PathClass,
    /// Tail growth rate of the peer count (peers per unit time).
    pub tail_slope: f64,
    /// Time-average of the peer count over the tail window.
    pub tail_average: f64,
    /// Simulated events executed.
    pub events: u64,
    /// Successful piece (or coded-combination) transfers executed.
    pub transfers: u64,
    /// `true` if the run hit the `max_events` safety valve before the
    /// horizon (its classification covers a clipped trajectory).
    pub truncated: bool,
}

/// Aggregated outcome of one agent scenario's replication batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentOutcome {
    /// The scenario's stream key.
    pub scenario_id: u64,
    /// The scenario's label.
    pub label: String,
    /// Theorem 1's verdict for the parameter point.
    pub theory: StabilityVerdict,
    /// Per-class vote counts.
    pub votes: ClassVotes,
    /// Majority-vote classification.
    pub majority: PathClass,
    /// Tail growth rate across replications, with confidence interval.
    pub tail_slope: Estimate,
    /// Tail-average peer count across replications, with confidence
    /// interval.
    pub tail_average: Estimate,
    /// Whether the majority vote agrees with theory (borderline → true).
    pub agrees: bool,
    /// Number of replications clipped by the `max_events` safety valve —
    /// non-zero means the verdict rests on truncated trajectories.
    pub truncated_replications: u32,
    /// Mean simulated events per replication.
    pub mean_events: f64,
    /// Replications quarantined by the failure policy: they contribute no
    /// vote and no sample, so `votes.total()` can fall short of the
    /// configured replication count by exactly this amount.
    pub failed_replications: u32,
}

/// Runs a single replication of `scenario` on its derived random stream.
///
/// # Errors
///
/// Returns [`SwarmError::InvalidParameter`] if the scenario's policy or
/// configuration is invalid, or its flash schedule fails validation.
pub fn run_agent_replication(
    scenario: &AgentScenario,
    config: &EngineConfig,
    replication: u32,
) -> Result<AgentReplication, SwarmError> {
    run_agent_replication_with_scratch(scenario, config, replication, &mut SimScratch::new())
}

/// Runs a single replication like [`run_agent_replication`], reusing the
/// buffers of `scratch` (and returning the run's snapshot buffer to it), so
/// a replication loop allocates nothing per task once the scratch is warm.
/// The scratch never changes the numbers.
///
/// # Errors
///
/// Returns [`SwarmError::InvalidParameter`] if the scenario's policy or
/// configuration is invalid, or its flash schedule fails validation.
pub fn run_agent_replication_with_scratch(
    scenario: &AgentScenario,
    config: &EngineConfig,
    replication: u32,
    scratch: &mut SimScratch,
) -> Result<AgentReplication, SwarmError> {
    run_agent_replication_opts(scenario, config, replication, scratch, 1)
}

/// Runs a single replication like [`run_agent_replication_with_scratch`],
/// additionally honouring the scenario's effective shard plan: when the
/// scenario (or `config`) asks for more than one shard, the swarm runs
/// through the sharded turbo driver with its shard segments spread over
/// `shard_jobs` worker threads. `shard_jobs` affects wall clock only — for
/// a fixed `(master_seed, shards, sync_window)` the result is bit-identical
/// at any value. Unsharded scenarios ignore `shard_jobs` and take the
/// ordinary scratch-reusing path.
///
/// # Errors
///
/// Returns [`SwarmError::InvalidParameter`] if the scenario's policy or
/// configuration is invalid, its flash schedule fails validation, or its
/// sharding settings are incompatible with the kernel.
pub fn run_agent_replication_opts(
    scenario: &AgentScenario,
    config: &EngineConfig,
    replication: u32,
    scratch: &mut SimScratch,
    shard_jobs: usize,
) -> Result<AgentReplication, SwarmError> {
    let sim = scenario.build_sim()?;
    let initial = scenario.initial_population();
    let mut rng = replication_rng(config.master_seed, scenario.id, u64::from(replication));
    if let Some(plan) = scenario.shard_plan(config, shard_jobs) {
        let result = sim.run_sharded(&initial, &scenario.flash, config.horizon, &plan, &mut rng)?;
        return Ok(classify_result(
            scenario,
            replication,
            &result,
            initial.len(),
        ));
    }
    let result =
        sim.run_with_scratch(&initial, &scenario.flash, config.horizon, &mut rng, scratch)?;
    let outcome = classify_result(scenario, replication, &result, initial.len());
    scratch.recycle(result);
    Ok(outcome)
}

/// Runs a single replication like [`run_agent_replication_with_scratch`],
/// additionally metering the simulator through a
/// [`telemetry::CounterRecorder`] and timing the run with a wall clock.
///
/// The recorder consumes no randomness, so the returned
/// [`AgentReplication`] is bit-identical to the unmetered helper's on the
/// same inputs; only the side-channel [`ReplicationTelemetry`] is extra.
///
/// # Errors
///
/// Returns [`SwarmError::InvalidParameter`] if the scenario's policy or
/// configuration is invalid, or its flash schedule fails validation.
pub fn run_agent_replication_metered(
    scenario: &AgentScenario,
    config: &EngineConfig,
    replication: u32,
    scratch: &mut SimScratch,
) -> Result<(AgentReplication, ReplicationTelemetry), SwarmError> {
    run_agent_replication_metered_opts(scenario, config, replication, scratch, 1)
}

/// Runs a single metered replication like [`run_agent_replication_metered`],
/// additionally honouring the scenario's effective shard plan (see
/// [`run_agent_replication_opts`]). A sharded run meters each shard with
/// its own [`telemetry::CounterRecorder`] — each satisfying the partition
/// identities on its own — and folds them in ascending shard order into the
/// returned [`ReplicationTelemetry`].
///
/// # Errors
///
/// Returns [`SwarmError::InvalidParameter`] if the scenario's policy or
/// configuration is invalid, its flash schedule fails validation, or its
/// sharding settings are incompatible with the kernel.
pub fn run_agent_replication_metered_opts(
    scenario: &AgentScenario,
    config: &EngineConfig,
    replication: u32,
    scratch: &mut SimScratch,
    shard_jobs: usize,
) -> Result<(AgentReplication, ReplicationTelemetry), SwarmError> {
    let sim = scenario.build_sim()?;
    let initial = scenario.initial_population();
    let mut rng = replication_rng(config.master_seed, scenario.id, u64::from(replication));
    if let Some(plan) = scenario.shard_plan(config, shard_jobs) {
        let mut recorders =
            vec![telemetry::CounterRecorder::new(); usize::try_from(plan.shards).unwrap_or(1)];
        let span = telemetry::Span::start();
        let result = sim.run_sharded_metered(
            &initial,
            &scenario.flash,
            config.horizon,
            &plan,
            &mut rng,
            &mut recorders,
        )?;
        let wall_seconds = span.seconds();
        let outcome = classify_result(scenario, replication, &result, initial.len());
        let mut counters = telemetry::CounterSet::new();
        for recorder in &recorders {
            counters.merge(&recorder.counters);
        }
        return Ok((
            outcome,
            ReplicationTelemetry {
                counters,
                wall_seconds,
            },
        ));
    }
    let mut recorder = telemetry::CounterRecorder::new();
    let span = telemetry::Span::start();
    let result = sim.run_metered(
        &initial,
        &scenario.flash,
        config.horizon,
        &mut rng,
        scratch,
        &mut recorder,
    )?;
    let wall_seconds = span.seconds();
    let outcome = classify_result(scenario, replication, &result, initial.len());
    scratch.recycle(result);
    Ok((
        outcome,
        ReplicationTelemetry {
            counters: recorder.counters,
            wall_seconds,
        },
    ))
}

/// Classifies a finished simulator run into the replication outcome — the
/// one place the path classifier is configured, shared by the metered and
/// unmetered helpers so they cannot drift.
fn classify_result(
    scenario: &AgentScenario,
    replication: u32,
    result: &swarm::metrics::SimResult,
    initial_peers: usize,
) -> AgentReplication {
    let classifier = PathClassifier::new(
        scenario.params.total_arrival_rate(),
        (3.0 * initial_peers as f64).max(30.0),
    );
    let verdict = classifier.classify(&result.peer_count_path());
    AgentReplication {
        replication,
        class: verdict.class,
        tail_slope: verdict.tail_slope,
        tail_average: verdict.tail_average,
        events: result.events,
        transfers: result.transfers,
        truncated: result.truncated,
    }
}

/// The theory verdict for an agent scenario: Theorem 15 for coded
/// scenarios (whose uncoded Theorem 1 analysis would mis-classify gifted
/// coded arrivals; arrival mixes outside the closed-form d ∈ {0, 1} case
/// have no quoted threshold and report as borderline rather than a guess),
/// Theorem 1 otherwise.
pub(crate) fn scenario_theory(scenario: &AgentScenario) -> StabilityVerdict {
    match &scenario.coding {
        Some(gifts) => theorem15_classify(&gifts.with_base(scenario.params.clone()))
            .unwrap_or(StabilityVerdict::Borderline),
        None => stability::classify(&scenario.params).verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, Workload};
    use pieceset::PieceId;

    /// The Session-backed equivalent of the old `run_agent_batch` free
    /// function, kept as a local helper so these unit tests read the same.
    fn run_agent_batch(
        scenarios: &[AgentScenario],
        config: &EngineConfig,
    ) -> Result<Vec<AgentOutcome>, crate::Error> {
        let session = Session::builder()
            .config(*config)
            .workload(Workload::agent(scenarios.to_vec()))
            .build()?;
        Ok(session.run().into_agent().expect("agent workload"))
    }

    fn example1(lambda0: f64) -> SwarmParams {
        SwarmParams::builder(1)
            .seed_rate(1.0)
            .contact_rate(1.0)
            .seed_departure_rate(2.0)
            .fresh_arrivals(lambda0)
            .build()
            .expect("valid parameters")
    }

    fn quick_config() -> EngineConfig {
        EngineConfig::default()
            .with_replications(3)
            .with_horizon(250.0)
            .with_master_seed(0xA6E7)
            .with_jobs(2)
    }

    #[test]
    fn batch_is_deterministic_across_worker_counts() {
        let scenarios = vec![
            AgentScenario::new(0, "stable", example1(0.6)),
            AgentScenario::new(1, "transient", example1(4.0)),
        ];
        let seq = run_agent_batch(
            &scenarios,
            &EngineConfig {
                jobs: 1,
                ..quick_config()
            },
        )
        .unwrap();
        let par = run_agent_batch(
            &scenarios,
            &EngineConfig {
                jobs: 8,
                ..quick_config()
            },
        )
        .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq[0].theory, StabilityVerdict::PositiveRecurrent);
        assert_eq!(seq[1].theory, StabilityVerdict::Transient);
        assert_eq!(seq[0].votes.total(), 3);
    }

    #[test]
    fn turbo_batches_are_deterministic_and_scratch_neutral() {
        use swarm::sim::KernelKind;
        let mut scenario = AgentScenario::new(0, "turbo", example1(0.8));
        scenario.config.kernel = KernelKind::Turbo;
        let scenarios = vec![scenario.clone(), {
            let mut s = AgentScenario::new(1, "turbo-hot", example1(3.0));
            s.config.kernel = KernelKind::Turbo;
            s
        }];
        // jobs=1 routes every replication through ONE warm scratch; jobs=8
        // spreads them over fresh ones — identical outcomes prove the
        // scratch never leaks state between replications.
        let seq = run_agent_batch(
            &scenarios,
            &EngineConfig {
                jobs: 1,
                ..quick_config()
            },
        )
        .unwrap();
        let par = run_agent_batch(
            &scenarios,
            &EngineConfig {
                jobs: 8,
                ..quick_config()
            },
        )
        .unwrap();
        assert_eq!(seq, par);
        // And a scratch-free replication matches the batch's scratch path.
        let lone = run_agent_replication(&scenarios[0], &quick_config(), 0).unwrap();
        let mut scratch = swarm::sim::SimScratch::new();
        let warm =
            run_agent_replication_with_scratch(&scenarios[0], &quick_config(), 0, &mut scratch)
                .unwrap();
        assert_eq!(lone, warm);
    }

    #[test]
    fn unknown_policy_is_rejected_up_front() {
        let mut scenario = AgentScenario::new(0, "bad", example1(1.0));
        scenario.policy = "telepathic".into();
        assert!(run_agent_batch(&[scenario], &quick_config()).is_err());
    }

    #[test]
    fn invalid_flash_schedule_is_an_error_not_a_worker_panic() {
        let mut scenario = AgentScenario::new(0, "bad-flash", example1(1.0));
        scenario.flash = vec![FlashCrowd {
            time: -5.0,
            count: 3,
            pieces: PieceSet::empty(),
        }];
        assert!(run_agent_batch(&[scenario], &quick_config()).is_err());
    }

    #[test]
    fn complete_initial_peers_with_immediate_departure_are_rejected() {
        // γ = ∞ (immediate departure): injecting full collections would
        // create immortal phantom seeds, so validation refuses them.
        let params = SwarmParams::builder(2)
            .seed_rate(1.0)
            .fresh_arrivals(1.0)
            .build()
            .unwrap();
        let mut scenario = AgentScenario::new(0, "phantom-seeds", params);
        scenario.initial = vec![(PieceSet::full(2), 10)];
        assert!(run_agent_batch(&[scenario.clone()], &quick_config()).is_err());
        // The same groups with finite γ are the legitimate multi-seed case.
        let finite = SwarmParams::builder(2)
            .seed_rate(1.0)
            .seed_departure_rate(1.0)
            .fresh_arrivals(1.0)
            .build()
            .unwrap();
        scenario.params = finite;
        assert!(run_agent_batch(&[scenario], &quick_config()).is_ok());
    }

    #[test]
    fn truncation_is_surfaced_in_the_outcome() {
        let mut scenario = AgentScenario::new(0, "clipped", example1(2.0));
        scenario.config.max_events = 200;
        let outcomes = run_agent_batch(&[scenario], &quick_config()).unwrap();
        assert_eq!(outcomes[0].truncated_replications, 3);
        assert!(outcomes[0].mean_events <= 200.0);
    }

    #[test]
    fn initial_population_and_flash_are_honoured() {
        let params = SwarmParams::builder(3)
            .seed_rate(0.5)
            .contact_rate(1.0)
            .seed_departure_rate(2.0)
            .fresh_arrivals(0.5)
            .build()
            .unwrap();
        let mut scenario = AgentScenario::new(7, "club+crowd", params);
        let club = PieceSet::full(3).without(PieceId::new(0));
        scenario.initial = vec![(club, 40), (PieceSet::empty(), 10)];
        scenario.flash = vec![FlashCrowd {
            time: 50.0,
            count: 100,
            pieces: PieceSet::empty(),
        }];
        assert_eq!(scenario.initial_population().len(), 50);
        let outcome = run_agent_replication(&scenario, &quick_config(), 0).unwrap();
        // 50 initial + crowd of 100 minus departures: the tail average must
        // reflect a populated system.
        assert!(outcome.tail_average > 10.0);
    }
}
