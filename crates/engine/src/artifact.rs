//! CSV and JSON artifact emitters for batch and phase-diagram results.
//!
//! Serialization is hand-rolled (the workspace's serde is a no-op shim; see
//! `shims/README.md`) and deliberately canonical: floats print through
//! Rust's shortest-round-trip `Display`, rows follow input order, and no
//! timestamps or host details are embedded — so a fixed master seed yields
//! byte-identical artifacts at any worker count, which the integration
//! tests assert.

use crate::grid::PhaseDiagram;
use crate::replicate::ScenarioOutcome;
use std::io;
use std::path::{Path, PathBuf};

// The canonical verdict/class spellings live in [`crate::labels`];
// re-exported here because artifact columns are where most callers meet
// them.
pub use crate::labels::{class_name, verdict_name};

/// A float rendered for CSV cells (`inf` / `-inf` / `nan` for non-finite).
fn csv_f64(x: f64) -> String {
    if x.is_nan() {
        "nan".to_owned()
    } else if x.is_infinite() {
        if x > 0.0 {
            "inf".to_owned()
        } else {
            "-inf".to_owned()
        }
    } else {
        format!("{x}")
    }
}

/// A float rendered as a JSON value (`null` for non-finite, which JSON
/// cannot represent as a number).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for a JSON string literal (without the quotes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a CSV field (quotes it when it contains separators or quotes).
fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

const OUTCOME_HEADER: &str = "scenario_id,label,theory,majority,agrees,agreement,\
votes_stable,votes_growing,votes_indeterminate,replications,failed_replications,\
tail_slope_mean,tail_slope_ci_half_width,tail_slope_std_dev,tail_slope_min,tail_slope_max,\
tail_average_mean,tail_average_ci_half_width,tail_average_std_dev,tail_average_min,tail_average_max";

fn outcome_csv_row(o: &ScenarioOutcome) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        o.scenario_id,
        csv_escape(&o.label),
        verdict_name(o.theory),
        class_name(o.majority),
        o.agrees,
        csv_f64(o.agreement),
        o.votes.stable,
        o.votes.growing,
        o.votes.indeterminate,
        o.votes.total(),
        o.failed_replications,
        csv_f64(o.tail_slope.mean),
        csv_f64(o.tail_slope.ci_half_width),
        csv_f64(o.tail_slope.std_dev),
        csv_f64(o.tail_slope.min),
        csv_f64(o.tail_slope.max),
        csv_f64(o.tail_average.mean),
        csv_f64(o.tail_average.ci_half_width),
        csv_f64(o.tail_average.std_dev),
        csv_f64(o.tail_average.min),
        csv_f64(o.tail_average.max),
    )
}

fn outcome_json_object(o: &ScenarioOutcome, indent: &str) -> String {
    let estimate = |label: &str, e: &crate::stats::Estimate| {
        format!(
            "\"{label}\": {{\"n\": {}, \"mean\": {}, \"std_dev\": {}, \"min\": {}, \"max\": {}, \
             \"confidence\": {}, \"ci_half_width\": {}}}",
            e.n,
            json_f64(e.mean),
            json_f64(e.std_dev),
            json_f64(e.min),
            json_f64(e.max),
            json_f64(e.confidence),
            json_f64(e.ci_half_width),
        )
    };
    format!(
        "{indent}{{\"scenario_id\": {}, \"label\": \"{}\", \"theory\": \"{}\", \
         \"majority\": \"{}\", \"agrees\": {}, \"agreement\": {}, \
         \"votes\": {{\"stable\": {}, \"growing\": {}, \"indeterminate\": {}}}, \
         \"failed_replications\": {}, {}, {}}}",
        o.scenario_id,
        json_escape(&o.label),
        verdict_name(o.theory),
        class_name(o.majority),
        o.agrees,
        json_f64(o.agreement),
        o.votes.stable,
        o.votes.growing,
        o.votes.indeterminate,
        o.failed_replications,
        estimate("tail_slope", &o.tail_slope),
        estimate("tail_average", &o.tail_average),
    )
}

/// Renders batch outcomes as a CSV table (header + one row per scenario,
/// in input order).
#[must_use]
pub fn outcomes_csv(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::from(OUTCOME_HEADER);
    out.push('\n');
    for outcome in outcomes {
        out.push_str(&outcome_csv_row(outcome));
        out.push('\n');
    }
    out
}

/// Renders batch outcomes as a JSON array (one object per scenario, in
/// input order).
#[must_use]
pub fn outcomes_json(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::from("[\n");
    for (i, outcome) in outcomes.iter().enumerate() {
        out.push_str(&outcome_json_object(outcome, "  "));
        if i + 1 < outcomes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders a phase diagram as CSV: the grid coordinates followed by the
/// outcome columns.
#[must_use]
pub fn phase_csv(diagram: &PhaseDiagram) -> String {
    let mut out = format!("pieces,mu,gamma,lambda0,{OUTCOME_HEADER}\n");
    for cell in &diagram.cells {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            cell.pieces,
            csv_f64(cell.mu),
            csv_f64(cell.gamma),
            csv_f64(cell.lambda0),
            outcome_csv_row(&cell.outcome)
        ));
    }
    out
}

/// Renders a phase diagram as JSON: the spec axes, skipped-cell count, and
/// one object per evaluated cell.
#[must_use]
pub fn phase_json(diagram: &PhaseDiagram) -> String {
    let axis = |label: &str, values: &[f64]| {
        let rendered: Vec<String> = values.iter().map(|v| json_f64(*v)).collect();
        format!("\"{}\": [{}]", json_escape(label), rendered.join(", "))
    };
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"spec\": {{{}, {}, {}, \"pieces\": [{}]}},\n",
        axis(&diagram.spec.lambda0.label, &diagram.spec.lambda0.values),
        axis(&diagram.spec.mu.label, &diagram.spec.mu.values),
        axis(&diagram.spec.gamma.label, &diagram.spec.gamma.values),
        diagram
            .spec
            .pieces
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out.push_str(&format!("  \"skipped\": {},\n", diagram.skipped));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in diagram.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pieces\": {}, \"mu\": {}, \"gamma\": {}, \"lambda0\": {}, \"outcome\":\n{}}}",
            cell.pieces,
            json_f64(cell.mu),
            json_f64(cell.gamma),
            json_f64(cell.lambda0),
            outcome_json_object(&cell.outcome, "      "),
        ));
        if i + 1 < diagram.cells.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `<stem>.csv` and `<stem>.json` for batch outcomes into `dir`
/// (creating it if needed) and returns the written paths.
pub fn write_outcomes(
    dir: &Path,
    stem: &str,
    outcomes: &[ScenarioOutcome],
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let csv_path = dir.join(format!("{stem}.csv"));
    let json_path = dir.join(format!("{stem}.json"));
    std::fs::write(&csv_path, outcomes_csv(outcomes))?;
    std::fs::write(&json_path, outcomes_json(outcomes))?;
    Ok(vec![csv_path, json_path])
}

/// Writes `<stem>.csv` and `<stem>.json` for a phase diagram into `dir`
/// (creating it if needed) and returns the written paths.
pub fn write_phase(dir: &Path, stem: &str, diagram: &PhaseDiagram) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let csv_path = dir.join(format!("{stem}.csv"));
    let json_path = dir.join(format!("{stem}.json"));
    std::fs::write(&csv_path, phase_csv(diagram))?;
    std::fs::write(&json_path, phase_json(diagram))?;
    Ok(vec![csv_path, json_path])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::ClassVotes;
    use crate::stats::Welford;
    use markov::PathClass;
    use swarm::StabilityVerdict;

    fn sample_outcome(label: &str) -> ScenarioOutcome {
        let mut votes = ClassVotes::default();
        votes.push(PathClass::Stable);
        votes.push(PathClass::Stable);
        votes.push(PathClass::Growing);
        let mut slope = Welford::new();
        let mut average = Welford::new();
        for v in [0.1, 0.2, 0.3] {
            slope.push(v);
            average.push(10.0 * v);
        }
        ScenarioOutcome {
            scenario_id: 4,
            label: label.to_owned(),
            theory: StabilityVerdict::PositiveRecurrent,
            votes,
            majority: PathClass::Stable,
            tail_slope: slope.estimate(0.95),
            tail_average: average.estimate(0.95),
            agreement: 2.0 / 3.0,
            agrees: true,
            failed_replications: 0,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = outcomes_csv(&[sample_outcome("a"), sample_outcome("b,with comma")]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("scenario_id,label,theory"));
        assert!(lines[1].contains("stable"));
        assert!(
            lines[2].contains("\"b,with comma\""),
            "comma field is quoted: {}",
            lines[2]
        );
        // Every row has the same number of fields as the header (the quoted
        // comma adds one raw comma).
        assert_eq!(lines[0].matches(',').count(), lines[1].matches(',').count());
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_braces() {
        let json = outcomes_json(&[sample_outcome("quote\"and\\slash")]);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\\\"and\\\\slash"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"ci_half_width\""));
    }

    #[test]
    fn non_finite_floats_are_representable() {
        assert_eq!(csv_f64(f64::INFINITY), "inf");
        assert_eq!(csv_f64(f64::NEG_INFINITY), "-inf");
        assert_eq!(csv_f64(f64::NAN), "nan");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn write_outcomes_creates_both_files() {
        let dir = std::env::temp_dir().join("engine-artifact-test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_outcomes(&dir, "batch", &[sample_outcome("x")]).expect("writable");
        assert_eq!(paths.len(), 2);
        for path in &paths {
            let content = std::fs::read_to_string(path).expect("written");
            assert!(content.contains('x'));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
