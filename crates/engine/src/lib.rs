//! Parallel Monte-Carlo replication engine for the Zhu–Hajek reproduction.
//!
//! The paper's verdicts (Theorem 1/14/15) are checked against *simulated*
//! sample paths, and near the stability boundary a single finite-horizon
//! replication is noise: the same parameter point can classify as `Stable`
//! or `Growing` depending on one exponential draw. This crate is the
//! workspace's scale-and-speed substrate for doing that comparison honestly:
//!
//! * [`replicate`] — runs **batches of replications** per scenario and
//!   aggregates them into majority-vote verdicts with streaming statistics,
//! * [`agent`] — the same replication contract for **agent-based
//!   scenarios** (piece policies, retry speed-up, flash crowds, large `K`)
//!   that the type-count CTMC cannot express, with `max_events` truncation
//!   surfaced per scenario,
//! * [`rng`] — deterministic per-replication ChaCha streams keyed by
//!   `(master seed, scenario id, replication id)`, so a batch's results are
//!   bit-for-bit reproducible at *any* worker count,
//! * [`stats`] — Welford mean/variance, min/max, and normal-approximation
//!   confidence intervals, merged in a fixed order independent of thread
//!   scheduling,
//! * [`grid`] — sweeps `(λ₀, µ, γ, K)` rectangles into phase-diagram
//!   tables with per-cell majority verdicts,
//! * [`artifact`] — CSV and JSON emitters for batch and grid results,
//! * [`progress`] — a thread-safe completed-replication counter.
//!
//! Parallelism is rayon-style data parallelism over the flat
//! `(scenario, replication)` task list; the worker count only changes the
//! schedule, never the numbers.
//!
//! # Example
//!
//! ```
//! use engine::{EngineConfig, Scenario, run_batch};
//! use swarm::SwarmParams;
//!
//! let params = SwarmParams::builder(1)
//!     .seed_rate(1.0)
//!     .contact_rate(1.0)
//!     .seed_departure_rate(2.0)
//!     .fresh_arrivals(1.0)
//!     .build()?;
//! let scenarios = vec![Scenario::new(0, "example-1 stable", params)];
//! let config = EngineConfig::default()
//!     .with_replications(4)
//!     .with_horizon(300.0)
//!     .with_master_seed(7)
//!     .with_jobs(2);
//! let outcomes = run_batch(&scenarios, &config);
//! assert_eq!(outcomes.len(), 1);
//! assert_eq!(outcomes[0].votes.total(), 4);
//! # Ok::<(), swarm::SwarmError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod artifact;
pub mod coded;
pub mod config;
pub mod grid;
pub mod progress;
pub mod replicate;
pub mod rng;
pub mod stats;

pub use agent::{
    run_agent_batch, run_agent_replication, run_agent_replication_with_scratch, AgentOutcome,
    AgentScenario,
};
pub use coded::{run_coded_grid, CodedGridSpec, CodedPhaseCell, CodedPhaseDiagram};
pub use config::EngineConfig;
pub use grid::{run_grid, Axis, GridSpec, PhaseCell, PhaseDiagram};
pub use replicate::{
    run_batch, run_replication, run_replication_on, verdict_agrees, ClassVotes, ReplicationOutcome,
    Scenario, ScenarioOutcome,
};
pub use rng::{derive_seed, replication_rng};
pub use stats::{Estimate, Welford};
