//! Parallel Monte-Carlo replication engine for the Zhu–Hajek reproduction.
//!
//! The paper's verdicts (Theorem 1/14/15) are checked against *simulated*
//! sample paths, and near the stability boundary a single finite-horizon
//! replication is noise: the same parameter point can classify as `Stable`
//! or `Growing` depending on one exponential draw. This crate is the
//! workspace's scale-and-speed substrate for doing that comparison honestly,
//! and [`Session`] is its single typed entry point:
//!
//! * [`session`] — [`Session`] / [`SessionBuilder`] / [`Workload`]: one
//!   builder covering CTMC batches, agent batches, `(λ₀, µ, γ, K)` phase
//!   grids, and Theorem 15 coded grids, executed as a batch
//!   ([`Session::run`]) or streamed into a [`ReplicationSink`]
//!   ([`Session::stream`]) with O(1)-memory incremental aggregation —
//!   both bit-identical at any worker count,
//! * [`error`] — the typed [`Error`] hierarchy; every failure mode is
//!   rejected by [`SessionBuilder::build`] before anything runs,
//! * [`replicate`] — the CTMC scenario/outcome types and the
//!   per-replication unit of work,
//! * [`agent`] — the same contract for **agent-based scenarios** (piece
//!   policies, retry speed-up, flash crowds, large `K`) that the
//!   type-count CTMC cannot express, with `max_events` truncation
//!   surfaced per scenario,
//! * [`rng`] — deterministic per-replication ChaCha streams keyed by
//!   `(master seed, scenario id, replication id)`, so results are
//!   bit-for-bit reproducible at *any* worker count,
//! * [`stats`] — Welford mean/variance, min/max, and normal-approximation
//!   confidence intervals, merged in a fixed order independent of thread
//!   scheduling,
//! * [`grid`] / [`coded`] — phase-diagram rectangle and diagram types,
//! * [`labels`] — the one canonical verdict/class naming and glyph map,
//! * [`artifact`] — CSV and JSON emitters for batch and grid results,
//! * [`progress`] — a thread-safe completed-replication counter, usable
//!   as a built-in [`ReplicationSink`] ([`ProgressSink`]),
//! * [`metrics`] — the telemetry export path: [`ReplicationTelemetry`]
//!   (per-replication kernel counters and wall time, attached to records
//!   when [`EngineConfig::metrics`] is set) and [`MetricsSink`], an NDJSON
//!   exporter that wraps any sink without perturbing the stream.
//!
//! Parallelism is data parallelism over the flat `(scenario, replication)`
//! task list with in-order result delivery behind a bounded reorder
//! window; the worker count only changes the schedule, never the numbers.
//!
//! # Example
//!
//! ```
//! use engine::{EngineConfig, Scenario, Session, Workload};
//! use swarm::SwarmParams;
//!
//! let params = SwarmParams::builder(1)
//!     .seed_rate(1.0)
//!     .contact_rate(1.0)
//!     .seed_departure_rate(2.0)
//!     .fresh_arrivals(1.0)
//!     .build()?;
//! let session = Session::builder()
//!     .config(
//!         EngineConfig::default()
//!             .with_replications(4)
//!             .with_horizon(300.0)
//!             .with_master_seed(7)
//!             .with_jobs(2),
//!     )
//!     .workload(Workload::ctmc(vec![Scenario::new(0, "example-1 stable", params)]))
//!     .build()
//!     .expect("valid session");
//! let outcomes = session.run().into_ctmc().expect("a CTMC workload");
//! assert_eq!(outcomes.len(), 1);
//! assert_eq!(outcomes[0].votes.total(), 4);
//! # Ok::<(), swarm::SwarmError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod artifact;
pub mod checkpoint;
pub mod coded;
pub mod config;
pub mod error;
pub mod faults;
pub mod grid;
pub mod labels;
pub mod metrics;
pub mod progress;
pub mod replicate;
pub mod rng;
pub mod session;
pub mod stats;

pub use agent::{
    run_agent_replication, run_agent_replication_metered, run_agent_replication_with_scratch,
    AgentOutcome, AgentReplication, AgentScenario,
};
pub use checkpoint::CheckpointSpec;
pub use coded::{CodedGridSpec, CodedPhaseCell, CodedPhaseDiagram};
pub use config::{EngineConfig, FailurePolicy};
pub use error::Error;
pub use faults::{FaultKind, FaultParseError, FaultPlan};
pub use grid::{Axis, GridSpec, PhaseCell, PhaseDiagram};
pub use metrics::{MetricsSink, ReplicationTelemetry};
pub use progress::{Progress, ProgressSink};
pub use replicate::{
    run_replication, run_replication_on, verdict_agrees, ClassVotes, ReplicationOutcome, Scenario,
    ScenarioOutcome,
};
pub use rng::{derive_seed, replication_rng};
pub use session::{
    NullSink, ReplicationFailure, ReplicationRecord, ReplicationSink, Session, SessionBuilder,
    SessionOutput, StreamPlan, StreamStats, Workload,
};
pub use stats::{Estimate, Welford};
