//! The engine's single typed entry point: [`Session`].
//!
//! A session is one configured unit of Monte-Carlo work — a CTMC batch, an
//! agent-simulator batch, a `(λ₀, µ, γ, K)` phase grid, or a Theorem 15
//! coded grid — built once through [`SessionBuilder`] and executed either
//! as a batch ([`Session::run`]) or streamed ([`Session::stream`]) into a
//! caller-supplied [`ReplicationSink`].
//!
//! Everything that can fail — scenario validation, duplicate stream keys,
//! unusable configurations — is rejected by [`SessionBuilder::build`], so
//! execution itself is infallible and a validated session can be run any
//! number of times.
//!
//! # Streaming contract
//!
//! Replication results are **delivered to the sink in a deterministic,
//! scheduling-independent order**: scenario-major, replication-minor,
//! exactly the order a single-threaded run would produce. Workers complete
//! tasks out of order; a bounded reorder window puts them back in sequence
//! before the sink (and the engine's own incremental Welford aggregation)
//! sees them. Consequences:
//!
//! * `run()` and `stream(sink)` produce bit-identical outputs at any
//!   [`EngineConfig::jobs`] value — `run` *is* `stream` with a
//!   [`NullSink`].
//! * aggregation is O(1) memory per scenario: no per-replication `Vec` is
//!   ever collected, so a million-replication scenario aggregates in the
//!   same peak memory as a ten-replication one (the reorder buffer is
//!   hard-capped by the window, which depends on the worker count, never
//!   on the replication count — see [`StreamStats::reorder_window`]).
//!
//! # Example
//!
//! ```
//! use engine::{EngineConfig, Scenario, Session, Workload};
//! use swarm::SwarmParams;
//!
//! let params = SwarmParams::builder(1)
//!     .seed_rate(1.0)
//!     .contact_rate(1.0)
//!     .seed_departure_rate(2.0)
//!     .fresh_arrivals(1.0)
//!     .build()?;
//! let session = Session::builder()
//!     .config(
//!         EngineConfig::default()
//!             .with_replications(3)
//!             .with_horizon(200.0)
//!             .with_master_seed(7)
//!             .with_jobs(2),
//!     )
//!     .workload(Workload::ctmc(vec![Scenario::new(0, "stable point", params)]))
//!     .build()
//!     .expect("valid session");
//! let outcomes = session.run().into_ctmc().expect("a CTMC workload");
//! assert_eq!(outcomes.len(), 1);
//! assert_eq!(outcomes[0].votes.total(), 3);
//! # Ok::<(), swarm::SwarmError>(())
//! ```

use crate::agent::{
    run_agent_replication_metered, run_agent_replication_with_scratch, AgentOutcome, AgentScenario,
};
use crate::coded::{CodedGridSpec, CodedPhaseCell, CodedPhaseDiagram};
use crate::config::EngineConfig;
use crate::error::Error;
use crate::grid::{GridSpec, PhaseCell, PhaseDiagram};
use crate::metrics::ReplicationTelemetry;
use crate::progress::ProgressSink;
use crate::replicate::{
    run_replication_on, verdict_agrees, ClassVotes, ReplicationOutcome, Scenario, ScenarioOutcome,
};
use crate::stats::Welford;
use markov::PathClass;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use swarm::coded::CodedParams;
use swarm::sim::{AgentConfig, KernelKind, SimScratch};
use swarm::{stability, StabilityVerdict, SwarmModel, SwarmParams};
use telemetry::{Histogram, Span};

/// One replication's result, as delivered to a [`ReplicationSink`].
///
/// Records arrive in deterministic scenario-major, replication-minor order
/// regardless of the worker count. CTMC replications report `events`,
/// `transfers`, and `truncated` as zero/false (the type-count simulator
/// does not track them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationRecord {
    /// Index of the scenario within the workload (input order).
    pub scenario_index: usize,
    /// The scenario's stream key.
    pub scenario_id: u64,
    /// Replication index within the scenario.
    pub replication: u32,
    /// Classification of the simulated peer-count path.
    pub class: PathClass,
    /// Tail growth rate of the peer count (peers per unit time).
    pub tail_slope: f64,
    /// Time-average of the peer count over the tail window.
    pub tail_average: f64,
    /// Simulated events executed (agent replications only).
    pub events: u64,
    /// Successful piece transfers (agent replications only).
    pub transfers: u64,
    /// Whether the run hit the `max_events` safety valve (agent
    /// replications only).
    pub truncated: bool,
    /// Per-replication kernel counters and wall time, populated for agent
    /// replications when [`EngineConfig::metrics`] is set (`None` for CTMC
    /// replications and whenever metrics are off). The counters never
    /// perturb the run: records are otherwise identical with metrics on or
    /// off.
    pub telemetry: Option<ReplicationTelemetry>,
}

/// What a stream is about to deliver, announced via
/// [`ReplicationSink::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPlan {
    /// Number of scenarios in the workload (after grid-cell skipping).
    pub scenarios: usize,
    /// Replications per scenario.
    pub replications: u32,
    /// Total records the sink will receive.
    pub total: u64,
}

/// Post-stream accounting, delivered via [`ReplicationSink::end`].
///
/// Beyond the delivery counts, the stats carry the scheduler's own
/// telemetry: how many workers ran, how the tasks spread across them, and
/// log₂ histograms of per-task wall time, frontier-window waits, and
/// reorder-buffer occupancy. The timing fields are wall-clock (and thus
/// vary run to run); every *delivered record* stays bit-identical at any
/// worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Records delivered (equals the plan's total).
    pub delivered: u64,
    /// High-water mark of the out-of-order reorder buffer. Always strictly
    /// below [`StreamStats::reorder_window`]; independent of the
    /// replication count.
    pub max_pending: usize,
    /// The bounded reorder window: a worker may run at most this many
    /// replications ahead of the delivery frontier, which caps the
    /// buffered results regardless of how many replications the stream
    /// carries.
    pub reorder_window: usize,
    /// Worker threads that actually ran (after clamping to the task
    /// count; `0` for an empty stream).
    pub workers: usize,
    /// Wall-clock duration of the whole stream, begin to end, in seconds.
    pub wall_seconds: f64,
    /// Replications completed per worker, sorted descending — the shape of
    /// the dynamic load balance, stated scheduling-independently.
    pub per_worker: Vec<u64>,
    /// Log₂ histogram of per-task wall times, in nanoseconds (one sample
    /// per replication, any workload kind).
    pub task_nanos: Histogram,
    /// Log₂ histogram of time workers spent blocked on the bounded reorder
    /// window, in nanoseconds (one sample per blocking episode; empty when
    /// no worker ever had to wait).
    pub queue_wait_nanos: Histogram,
    /// Log₂ histogram of the reorder buffer's occupancy observed after
    /// each result was pushed (single-worker streams never buffer, so this
    /// is empty at `jobs = 1`).
    pub reorder_occupancy: Histogram,
}

impl StreamStats {
    /// Stats for a degenerate single-worker stream that delivered
    /// `delivered` records in `wall_seconds` — a convenience for sinks
    /// exercised outside [`Session::stream`] (tests, adapters).
    #[must_use]
    pub fn inline(delivered: u64, wall_seconds: f64) -> Self {
        StreamStats {
            delivered,
            max_pending: 0,
            reorder_window: reorder_window(1),
            workers: 1,
            wall_seconds,
            per_worker: vec![delivered],
            task_nanos: Histogram::new(),
            queue_wait_nanos: Histogram::new(),
            reorder_occupancy: Histogram::new(),
        }
    }
}

/// Observer for streamed replication results.
///
/// All methods have empty default implementations, so a sink only
/// implements what it needs. Methods are called from the streaming
/// machinery in deterministic order: one `begin`, then exactly
/// `plan.total` `record` calls (scenario-major, replication-minor), then
/// one `end`. Sinks must be [`Send`]: delivery may happen on worker
/// threads (serialized — never concurrently).
pub trait ReplicationSink {
    /// Announces the stream's shape before the first record.
    fn begin(&mut self, plan: &StreamPlan) {
        let _ = plan;
    }

    /// Receives one replication's result.
    fn record(&mut self, record: &ReplicationRecord) {
        let _ = record;
    }

    /// Announces the end of the stream with its accounting.
    fn end(&mut self, stats: &StreamStats) {
        let _ = stats;
    }
}

/// A sink that discards everything — [`Session::run`] streams into this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ReplicationSink for NullSink {}

/// The work a [`Session`] executes. Construct one with [`Workload::ctmc`],
/// [`Workload::agent`], [`Workload::grid`], or [`Workload::coded`].
#[derive(Debug, Clone)]
pub struct Workload {
    kind: WorkloadKind,
}

#[derive(Debug, Clone)]
enum WorkloadKind {
    Ctmc(Vec<Scenario>),
    Agent(Vec<AgentScenario>),
    Grid {
        spec: GridSpec,
        coords: Vec<(usize, f64, f64, f64)>,
        scenarios: Vec<Scenario>,
        skipped: usize,
    },
    Coded {
        spec: CodedGridSpec,
        coords: Vec<(usize, u64, f64)>,
        scenarios: Vec<AgentScenario>,
        skipped: usize,
    },
}

impl Workload {
    /// A batch of type-count CTMC scenarios (the Theorem 1 path).
    #[must_use]
    pub fn ctmc(scenarios: Vec<Scenario>) -> Self {
        Workload {
            kind: WorkloadKind::Ctmc(scenarios),
        }
    }

    /// A batch of agent-simulator scenarios (policies, flash crowds, retry
    /// speed-up, coded kernels).
    #[must_use]
    pub fn agent(scenarios: Vec<AgentScenario>) -> Self {
        Workload {
            kind: WorkloadKind::Agent(scenarios),
        }
    }

    /// A `(λ₀, µ, γ, K)` phase-diagram sweep. `make_params` constructs the
    /// model at each cell; cells where it returns `None` are skipped (and
    /// counted in [`PhaseDiagram::skipped`]). Scenario ids are the cell's
    /// linear index in the rectangle, so a cell's random streams depend
    /// only on its position and the master seed — not on how many other
    /// cells were skipped.
    #[must_use]
    pub fn grid<F>(spec: &GridSpec, make_params: F) -> Self
    where
        F: Fn(usize, f64, f64, f64) -> Option<SwarmParams>,
    {
        let mut coords = Vec::new();
        let mut scenarios = Vec::new();
        let mut skipped = 0usize;
        let mut linear_index = 0u64;
        for &k in &spec.pieces {
            for &mu in &spec.mu.values {
                for &gamma in &spec.gamma.values {
                    for &lambda0 in &spec.lambda0.values {
                        match make_params(k, mu, gamma, lambda0) {
                            Some(params) => {
                                let label = format!(
                                    "K={k},{}={mu},{}={gamma},{}={lambda0}",
                                    spec.mu.label, spec.gamma.label, spec.lambda0.label
                                );
                                coords.push((k, mu, gamma, lambda0));
                                scenarios.push(Scenario::new(linear_index, label, params));
                            }
                            None => skipped += 1,
                        }
                        linear_index += 1;
                    }
                }
            }
        }
        Workload {
            kind: WorkloadKind::Grid {
                spec: spec.clone(),
                coords,
                scenarios,
                skipped,
            },
        }
    }

    /// A Theorem 15 `(f, q, K)` coded phase-diagram sweep on the coded
    /// kernel (or the bitsliced coded-turbo kernel when `spec.sim.kernel`
    /// asks for it). Cells whose parameters fail to construct (an unsupported
    /// field order, an invalid fraction) are skipped and counted in
    /// [`CodedPhaseDiagram::skipped`]; scenario ids are linear cell
    /// indices.
    #[must_use]
    pub fn coded(spec: &CodedGridSpec) -> Self {
        let mut coords = Vec::new();
        let mut scenarios = Vec::new();
        let mut skipped = 0usize;
        let mut linear_index = 0u64;
        // A coded sweep honours an explicit coded-turbo request (the
        // bitsliced GF(2) kernel); any other configured kernel is overridden
        // to the reference coded kernel.
        let kernel = if spec.sim.kernel == KernelKind::CodedTurbo {
            KernelKind::CodedTurbo
        } else {
            KernelKind::Coded
        };
        let sim_config = AgentConfig { kernel, ..spec.sim };
        for &k in &spec.pieces {
            for &q in &spec.field_orders {
                for &f in &spec.gift_fraction.values {
                    match CodedParams::gift_example(
                        k,
                        q,
                        spec.lambda_total,
                        f,
                        spec.seed_rate,
                        spec.contact_rate,
                        spec.seed_departure_rate,
                    ) {
                        Ok(params) => {
                            let mut scenario = AgentScenario::new(
                                linear_index,
                                format!("K={k},q={q},f={f}"),
                                params.base.clone(),
                            );
                            scenario.coding = Some(params.gifts());
                            scenario.config = sim_config;
                            coords.push((k, q, f));
                            scenarios.push(scenario);
                        }
                        Err(_) => skipped += 1,
                    }
                    linear_index += 1;
                }
            }
        }
        Workload {
            kind: WorkloadKind::Coded {
                spec: spec.clone(),
                coords,
                scenarios,
                skipped,
            },
        }
    }

    /// Number of scenarios the workload will replicate (after grid-cell
    /// skipping).
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.kind {
            WorkloadKind::Ctmc(s) | WorkloadKind::Grid { scenarios: s, .. } => s.len(),
            WorkloadKind::Agent(s) | WorkloadKind::Coded { scenarios: s, .. } => s.len(),
        }
    }

    /// Returns `true` if the workload has no scenarios to run.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The result of executing a [`Session`] — one variant per workload kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutput {
    /// Aggregated CTMC outcomes, in input order.
    Ctmc(Vec<ScenarioOutcome>),
    /// Aggregated agent outcomes, in input order.
    Agent(Vec<AgentOutcome>),
    /// An evaluated `(λ₀, µ, γ, K)` phase diagram.
    Grid(PhaseDiagram),
    /// An evaluated Theorem 15 coded phase diagram.
    Coded(CodedPhaseDiagram),
}

impl SessionOutput {
    /// The CTMC outcomes, if this was a [`Workload::ctmc`] session.
    #[must_use]
    pub fn into_ctmc(self) -> Option<Vec<ScenarioOutcome>> {
        match self {
            SessionOutput::Ctmc(outcomes) => Some(outcomes),
            _ => None,
        }
    }

    /// The agent outcomes, if this was a [`Workload::agent`] session.
    #[must_use]
    pub fn into_agent(self) -> Option<Vec<AgentOutcome>> {
        match self {
            SessionOutput::Agent(outcomes) => Some(outcomes),
            _ => None,
        }
    }

    /// The phase diagram, if this was a [`Workload::grid`] session.
    #[must_use]
    pub fn into_grid(self) -> Option<PhaseDiagram> {
        match self {
            SessionOutput::Grid(diagram) => Some(diagram),
            _ => None,
        }
    }

    /// The coded phase diagram, if this was a [`Workload::coded`] session.
    #[must_use]
    pub fn into_coded(self) -> Option<CodedPhaseDiagram> {
        match self {
            SessionOutput::Coded(diagram) => Some(diagram),
            _ => None,
        }
    }
}

/// Builder for a [`Session`]; all validation happens in
/// [`SessionBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    config: Option<EngineConfig>,
    workload: Option<Workload>,
}

impl SessionBuilder {
    /// Sets the execution configuration (defaults to
    /// [`EngineConfig::default`] when omitted).
    #[must_use]
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the workload to execute.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Validates the configuration and every scenario, returning a session
    /// whose execution cannot fail.
    ///
    /// # Errors
    ///
    /// * [`Error::MissingWorkload`] — no workload was supplied,
    /// * [`Error::InvalidConfig`] — non-positive horizon or a confidence
    ///   level outside `(0, 1)`,
    /// * [`Error::DuplicateScenarioId`] — two scenarios share a stream
    ///   key,
    /// * [`Error::Scenario`] — an agent scenario's policy, simulator
    ///   configuration, initial population, or flash schedule failed
    ///   validation.
    pub fn build(self) -> Result<Session, Error> {
        let config = self.config.unwrap_or_default();
        let workload = self.workload.ok_or(Error::MissingWorkload)?;
        if config.horizon.is_nan() || config.horizon <= 0.0 {
            return Err(Error::InvalidConfig(format!(
                "horizon must be positive, got {}",
                config.horizon
            )));
        }
        if config.confidence.is_nan() || config.confidence <= 0.0 || config.confidence >= 1.0 {
            return Err(Error::InvalidConfig(format!(
                "confidence must lie in (0, 1), got {}",
                config.confidence
            )));
        }
        match &workload.kind {
            WorkloadKind::Ctmc(scenarios) => {
                check_unique_ids(scenarios.iter().map(|s| s.id))?;
            }
            WorkloadKind::Agent(scenarios) => {
                check_unique_ids(scenarios.iter().map(|s| s.id))?;
                validate_agent_scenarios(scenarios)?;
            }
            // Grid cells carry their linear rectangle index as id: unique
            // by construction.
            WorkloadKind::Grid { .. } => {}
            WorkloadKind::Coded { scenarios, .. } => validate_agent_scenarios(scenarios)?,
        }
        Ok(Session { config, workload })
    }
}

fn check_unique_ids(ids: impl Iterator<Item = u64>) -> Result<(), Error> {
    let mut seen: Vec<u64> = ids.collect();
    seen.sort_unstable();
    for pair in seen.windows(2) {
        if pair[0] == pair[1] {
            return Err(Error::DuplicateScenarioId(pair[0]));
        }
    }
    Ok(())
}

fn validate_agent_scenarios(scenarios: &[AgentScenario]) -> Result<(), Error> {
    for scenario in scenarios {
        scenario.validate().map_err(|source| Error::Scenario {
            label: scenario.label.clone(),
            source,
        })?;
    }
    Ok(())
}

/// A validated, repeatedly executable unit of Monte-Carlo work.
///
/// See the [module docs](self) for the streaming contract and an example.
#[derive(Debug, Clone)]
pub struct Session {
    config: EngineConfig,
    workload: Workload,
}

impl Session {
    /// Starts building a session.
    #[must_use]
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The session's execution configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The session's workload.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Runs the workload as a batch and returns the aggregated output.
    ///
    /// Implemented on top of [`Session::stream`] with a [`NullSink`], so
    /// batch and streaming execution are one code path and produce
    /// bit-identical results.
    #[must_use]
    pub fn run(&self) -> SessionOutput {
        self.stream(&mut NullSink)
    }

    /// Runs the workload, delivering every replication's result to `sink`
    /// in deterministic scenario-major, replication-minor order, and
    /// returns the same aggregated output as [`Session::run`].
    ///
    /// When [`EngineConfig::progress`] is set, a built-in
    /// [`ProgressSink`] additionally reports decile progress on stderr.
    pub fn stream<S: ReplicationSink + Send>(&self, sink: &mut S) -> SessionOutput {
        match &self.workload.kind {
            WorkloadKind::Ctmc(scenarios) => SessionOutput::Ctmc(self.stream_ctmc(scenarios, sink)),
            WorkloadKind::Agent(scenarios) => {
                SessionOutput::Agent(self.stream_agent(scenarios, sink))
            }
            WorkloadKind::Grid {
                spec,
                coords,
                scenarios,
                skipped,
            } => {
                let outcomes = self.stream_ctmc(scenarios, sink);
                let cells = coords
                    .iter()
                    .zip(outcomes)
                    .map(|(&(pieces, mu, gamma, lambda0), outcome)| PhaseCell {
                        pieces,
                        mu,
                        gamma,
                        lambda0,
                        outcome,
                    })
                    .collect();
                SessionOutput::Grid(PhaseDiagram {
                    spec: spec.clone(),
                    cells,
                    skipped: *skipped,
                })
            }
            WorkloadKind::Coded {
                spec,
                coords,
                scenarios,
                skipped,
            } => {
                let outcomes = self.stream_agent(scenarios, sink);
                let cells = coords
                    .iter()
                    .zip(outcomes)
                    .map(
                        |(&(pieces, field_order, gift_fraction), outcome)| CodedPhaseCell {
                            pieces,
                            field_order,
                            gift_fraction,
                            outcome,
                        },
                    )
                    .collect();
                SessionOutput::Coded(CodedPhaseDiagram {
                    spec: spec.clone(),
                    cells,
                    skipped: *skipped,
                })
            }
        }
    }

    fn stream_ctmc<S: ReplicationSink + Send>(
        &self,
        scenarios: &[Scenario],
        sink: &mut S,
    ) -> Vec<ScenarioOutcome> {
        let config = &self.config;
        let mut framing = StreamFraming::begin(config, scenarios.len(), sink);
        let (total, window, reps) = (framing.total, framing.window, framing.reps);

        // One model per scenario, shared (read-only) by its replications —
        // the `2^K` type space is built once, not per replication.
        let models: Vec<SwarmModel> = scenarios
            .iter()
            .map(|s| SwarmModel::new(s.params.clone()))
            .collect();

        let mut outcomes: Vec<ScenarioOutcome> = Vec::with_capacity(scenarios.len());
        let mut agg = CtmcAggregate::new();
        let sched = run_ordered(
            total,
            config.jobs,
            window,
            || (),
            |index, (): &mut ()| {
                let (s, r) = (index / reps, (index % reps) as u32);
                run_replication_on(&models[s], &scenarios[s], config, r)
            },
            |index, outcome: ReplicationOutcome| {
                let (s, r) = (index / reps, index % reps);
                if r == 0 {
                    agg.begin(stability::classify(&scenarios[s].params).verdict);
                }
                framing.record(&ReplicationRecord {
                    scenario_index: s,
                    scenario_id: scenarios[s].id,
                    replication: r as u32,
                    class: outcome.class,
                    tail_slope: outcome.tail_slope,
                    tail_average: outcome.tail_average,
                    events: 0,
                    transfers: 0,
                    truncated: false,
                    telemetry: None,
                });
                agg.push(&outcome);
                if r + 1 == reps {
                    outcomes.push(agg.finish(&scenarios[s], config));
                }
            },
        );

        framing.end(sched);
        outcomes
    }

    fn stream_agent<S: ReplicationSink + Send>(
        &self,
        scenarios: &[AgentScenario],
        sink: &mut S,
    ) -> Vec<AgentOutcome> {
        let config = &self.config;
        let mut framing = StreamFraming::begin(config, scenarios.len(), sink);
        let (total, window, reps) = (framing.total, framing.window, framing.reps);

        let mut outcomes: Vec<AgentOutcome> = Vec::with_capacity(scenarios.len());
        let mut agg = AgentAggregate::new();
        let sched = run_ordered(
            total,
            config.jobs,
            window,
            // One scratch arena per worker: every replication a worker
            // serves reuses its buffers, so a warm stream allocates nothing
            // per task. The scratch never changes the numbers.
            SimScratch::new,
            |index, scratch: &mut SimScratch| {
                let (s, r) = (index / reps, (index % reps) as u32);
                // The metered path runs the identical simulation through a
                // counting recorder (no extra draws), so the outcome is
                // bit-identical either way; only the side channel differs.
                if config.metrics {
                    let (outcome, telemetry) =
                        run_agent_replication_metered(&scenarios[s], config, r, scratch)
                            .expect("scenarios validated when the session was built");
                    (outcome, Some(telemetry))
                } else {
                    let outcome =
                        run_agent_replication_with_scratch(&scenarios[s], config, r, scratch)
                            .expect("scenarios validated when the session was built");
                    (outcome, None)
                }
            },
            |index,
             (outcome, telemetry): (
                crate::agent::AgentReplication,
                Option<ReplicationTelemetry>,
            )| {
                let (s, r) = (index / reps, index % reps);
                if r == 0 {
                    agg.begin(crate::agent::scenario_theory(&scenarios[s]));
                }
                framing.record(&ReplicationRecord {
                    scenario_index: s,
                    scenario_id: scenarios[s].id,
                    replication: r as u32,
                    class: outcome.class,
                    tail_slope: outcome.tail_slope,
                    tail_average: outcome.tail_average,
                    events: outcome.events,
                    transfers: outcome.transfers,
                    truncated: outcome.truncated,
                    telemetry,
                });
                agg.push(&outcome);
                if r + 1 == reps {
                    outcomes.push(agg.finish(&scenarios[s], config));
                }
            },
        );

        framing.end(sched);
        outcomes
    }
}

/// The begin/record/end sink protocol shared by every workload kind: one
/// place announces the plan, fans each record out to the caller's sink
/// (and, when [`EngineConfig::progress`] is set, the built-in
/// [`ProgressSink`]), and emits the closing [`StreamStats`] — so the CTMC
/// and agent paths cannot drift apart on the sink contract.
struct StreamFraming<'s, S: ReplicationSink> {
    sink: &'s mut S,
    progress: Option<ProgressSink>,
    /// Total records the stream will deliver.
    total: usize,
    /// Bounded reorder window for this stream's worker count.
    window: usize,
    /// Replications per scenario (clamped to at least one).
    reps: usize,
    /// Wall clock of the whole stream, begin to end.
    span: Span,
}

impl<'s, S: ReplicationSink> StreamFraming<'s, S> {
    fn begin(config: &EngineConfig, scenarios: usize, sink: &'s mut S) -> Self {
        let reps = config.replications.max(1) as usize;
        let total = scenarios * reps;
        let window = reorder_window(effective_jobs(config.jobs));
        let plan = StreamPlan {
            scenarios,
            replications: reps as u32,
            total: total as u64,
        };
        let mut progress = config.progress.then(|| ProgressSink::new("session"));
        sink.begin(&plan);
        if let Some(p) = &mut progress {
            p.begin(&plan);
        }
        StreamFraming {
            sink,
            progress,
            total,
            window,
            reps,
            span: Span::start(),
        }
    }

    fn record(&mut self, record: &ReplicationRecord) {
        self.sink.record(record);
        if let Some(p) = &mut self.progress {
            p.record(record);
        }
    }

    fn end(mut self, sched: SchedulerStats) {
        let stats = StreamStats {
            delivered: self.total as u64,
            max_pending: sched.max_pending,
            reorder_window: self.window,
            workers: sched.workers,
            wall_seconds: self.span.seconds(),
            per_worker: sched.per_worker,
            task_nanos: sched.task_nanos,
            queue_wait_nanos: sched.queue_wait_nanos,
            reorder_occupancy: sched.reorder_occupancy,
        };
        if let Some(p) = &mut self.progress {
            p.end(&stats);
        }
        self.sink.end(&stats);
    }
}

/// Incremental (O(1)-memory) aggregation of one CTMC scenario's
/// replications, pushed in replication order.
struct CtmcAggregate {
    theory: StabilityVerdict,
    votes: ClassVotes,
    slope: Welford,
    average: Welford,
    agreeing: u32,
    count: u32,
}

impl CtmcAggregate {
    fn new() -> Self {
        CtmcAggregate {
            theory: StabilityVerdict::Borderline,
            votes: ClassVotes::default(),
            slope: Welford::new(),
            average: Welford::new(),
            agreeing: 0,
            count: 0,
        }
    }

    fn begin(&mut self, theory: StabilityVerdict) {
        *self = CtmcAggregate::new();
        self.theory = theory;
    }

    fn push(&mut self, outcome: &ReplicationOutcome) {
        self.votes.push(outcome.class);
        self.slope.push(outcome.tail_slope);
        self.average.push(outcome.tail_average);
        if verdict_agrees(self.theory, outcome.class) {
            self.agreeing += 1;
        }
        self.count += 1;
    }

    fn finish(&mut self, scenario: &Scenario, config: &EngineConfig) -> ScenarioOutcome {
        let majority = self.votes.majority();
        ScenarioOutcome {
            scenario_id: scenario.id,
            label: scenario.label.clone(),
            theory: self.theory,
            votes: self.votes,
            majority,
            tail_slope: self.slope.estimate(config.confidence),
            tail_average: self.average.estimate(config.confidence),
            agreement: if self.count == 0 {
                1.0
            } else {
                f64::from(self.agreeing) / f64::from(self.count)
            },
            agrees: verdict_agrees(self.theory, majority),
        }
    }
}

/// Incremental aggregation of one agent scenario's replications.
struct AgentAggregate {
    theory: StabilityVerdict,
    votes: ClassVotes,
    slope: Welford,
    average: Welford,
    events: Welford,
    truncated: u32,
}

impl AgentAggregate {
    fn new() -> Self {
        AgentAggregate {
            theory: StabilityVerdict::Borderline,
            votes: ClassVotes::default(),
            slope: Welford::new(),
            average: Welford::new(),
            events: Welford::new(),
            truncated: 0,
        }
    }

    fn begin(&mut self, theory: StabilityVerdict) {
        *self = AgentAggregate::new();
        self.theory = theory;
    }

    fn push(&mut self, outcome: &crate::agent::AgentReplication) {
        self.votes.push(outcome.class);
        self.slope.push(outcome.tail_slope);
        self.average.push(outcome.tail_average);
        self.events.push(outcome.events as f64);
        self.truncated += u32::from(outcome.truncated);
    }

    fn finish(&mut self, scenario: &AgentScenario, config: &EngineConfig) -> AgentOutcome {
        let majority = self.votes.majority();
        AgentOutcome {
            scenario_id: scenario.id,
            label: scenario.label.clone(),
            theory: self.theory,
            votes: self.votes,
            majority,
            tail_slope: self.slope.estimate(config.confidence),
            tail_average: self.average.estimate(config.confidence),
            agrees: verdict_agrees(self.theory, majority),
            truncated_replications: self.truncated,
            mean_events: self.events.mean(),
        }
    }
}

/// Resolves a `jobs` setting (0 = one worker per available core).
fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    }
}

/// The bounded reorder window for a worker count: how far a worker may run
/// ahead of the delivery frontier. Scales with the worker count only, so
/// the reorder buffer's peak size is independent of the replication count.
fn reorder_window(jobs: usize) -> usize {
    (jobs * 4).max(64)
}

/// What the scheduler observed about itself while running one stream:
/// worker shape, load balance, and the wall-time histograms surfaced on
/// [`StreamStats`].
#[derive(Debug, Default)]
struct SchedulerStats {
    max_pending: usize,
    workers: usize,
    /// Tasks completed per worker, sorted descending.
    per_worker: Vec<u64>,
    task_nanos: Histogram,
    queue_wait_nanos: Histogram,
    reorder_occupancy: Histogram,
}

/// The in-order delivery frontier shared by the workers.
struct Emitter<T, D: FnMut(usize, T)> {
    next: usize,
    pending: BTreeMap<usize, T>,
    max_pending: usize,
    /// Buffer occupancy observed after each push (under the lock the push
    /// already holds, so the sample is free of extra synchronization).
    occupancy: Histogram,
    panicked: bool,
    deliver: D,
}

impl<T, D: FnMut(usize, T)> Emitter<T, D> {
    fn push(&mut self, index: usize, value: T) {
        if index == self.next {
            (self.deliver)(index, value);
            self.next += 1;
            while let Some(value) = self.pending.remove(&self.next) {
                let index = self.next;
                (self.deliver)(index, value);
                self.next += 1;
            }
        } else {
            self.pending.insert(index, value);
            self.max_pending = self.max_pending.max(self.pending.len());
        }
        self.occupancy.record(self.pending.len() as u64);
    }
}

/// Runs `total` indexed tasks over `jobs` workers, delivering each result
/// through `deliver` in strict index order, and returns the scheduler's
/// self-observation (reorder high-water mark, per-worker load, timing
/// histograms).
///
/// Workers self-schedule off an atomic counter (dynamic load balancing)
/// but may run at most `window` tasks ahead of the delivery frontier, so
/// at most `window − 1` results are ever buffered — bounded memory
/// regardless of `total`. Delivery happens under a lock on whichever
/// worker completes the frontier task; calls are serialized and in order,
/// which is what makes streamed aggregation bit-identical at any worker
/// count. The instrumentation reads the wall clock per task and merges
/// worker-local histograms once at exit — it takes no extra locks on the
/// hot path and never influences scheduling.
fn run_ordered<T, C, MkCtx, Task, Deliver>(
    total: usize,
    jobs: usize,
    window: usize,
    make_ctx: MkCtx,
    task: Task,
    deliver: Deliver,
) -> SchedulerStats
where
    T: Send,
    MkCtx: Fn() -> C + Sync,
    Task: Fn(usize, &mut C) -> T + Sync,
    Deliver: FnMut(usize, T) + Send,
{
    if total == 0 {
        return SchedulerStats::default();
    }
    let jobs = effective_jobs(jobs).min(total);
    if jobs <= 1 {
        // Single worker: run inline, delivery is trivially in order.
        let mut ctx = make_ctx();
        let mut deliver = deliver;
        let mut task_nanos = Histogram::new();
        for index in 0..total {
            let span = Span::start();
            let value = task(index, &mut ctx);
            task_nanos.record(span.nanos());
            deliver(index, value);
        }
        return SchedulerStats {
            max_pending: 0,
            workers: 1,
            per_worker: vec![total as u64],
            task_nanos,
            queue_wait_nanos: Histogram::new(),
            reorder_occupancy: Histogram::new(),
        };
    }

    /// What one worker accumulates locally (merged under a lock only once,
    /// when the worker retires).
    struct WorkerLocal {
        completed: u64,
        task_nanos: Histogram,
        queue_wait_nanos: Histogram,
    }

    let counter = AtomicUsize::new(0);
    let shared = Mutex::new(Emitter {
        next: 0,
        pending: BTreeMap::new(),
        max_pending: 0,
        occupancy: Histogram::new(),
        panicked: false,
        deliver,
    });
    let frontier_moved = Condvar::new();
    let locals: Mutex<Vec<WorkerLocal>> = Mutex::new(Vec::with_capacity(jobs));

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                // If this worker panics, mark the stream dead and wake
                // every window-waiter so the panic propagates through the
                // scope instead of deadlocking the others.
                struct Abort<'a, T, D: FnMut(usize, T)> {
                    shared: &'a Mutex<Emitter<T, D>>,
                    frontier_moved: &'a Condvar,
                }
                impl<T, D: FnMut(usize, T)> Drop for Abort<'_, T, D> {
                    fn drop(&mut self) {
                        if std::thread::panicking() {
                            if let Ok(mut emitter) = self.shared.lock() {
                                emitter.panicked = true;
                            }
                            self.frontier_moved.notify_all();
                        }
                    }
                }
                let _abort = Abort {
                    shared: &shared,
                    frontier_moved: &frontier_moved,
                };

                let mut ctx = make_ctx();
                let mut local = WorkerLocal {
                    completed: 0,
                    task_nanos: Histogram::new(),
                    queue_wait_nanos: Histogram::new(),
                };
                loop {
                    let index = counter.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    {
                        // Bounded window: wait until the frontier is close
                        // enough that this result cannot over-fill the
                        // reorder buffer.
                        let mut emitter = shared.lock().unwrap();
                        if index >= emitter.next + window && !emitter.panicked {
                            let wait = Span::start();
                            while index >= emitter.next + window && !emitter.panicked {
                                emitter = frontier_moved.wait(emitter).unwrap();
                            }
                            local.queue_wait_nanos.record(wait.nanos());
                        }
                        if emitter.panicked {
                            return;
                        }
                    }
                    let span = Span::start();
                    let value = task(index, &mut ctx);
                    local.task_nanos.record(span.nanos());
                    local.completed += 1;
                    let mut emitter = shared.lock().unwrap();
                    emitter.push(index, value);
                    drop(emitter);
                    frontier_moved.notify_all();
                }
                locals.lock().unwrap().push(local);
            });
        }
    });

    let emitter = shared.into_inner().unwrap();
    let mut stats = SchedulerStats {
        max_pending: emitter.max_pending,
        workers: jobs,
        per_worker: Vec::with_capacity(jobs),
        task_nanos: Histogram::new(),
        queue_wait_nanos: Histogram::new(),
        reorder_occupancy: emitter.occupancy,
    };
    for local in locals.into_inner().unwrap() {
        stats.per_worker.push(local.completed);
        stats.task_nanos.merge(&local.task_nanos);
        stats.queue_wait_nanos.merge(&local.queue_wait_nanos);
    }
    // Scheduling decides which worker ran what; sorting states the load
    // balance shape independently of thread identity.
    stats.per_worker.sort_unstable_by(|a, b| b.cmp(a));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ordered_delivery_is_in_index_order_at_any_worker_count() {
        for jobs in [1usize, 2, 4, 8] {
            let mut seen = Vec::new();
            let sched = run_ordered(
                257,
                jobs,
                reorder_window(jobs),
                || (),
                |i, (): &mut ()| i * 3,
                |i, v| {
                    assert_eq!(v, i * 3);
                    seen.push(i);
                },
            );
            assert_eq!(seen, (0..257).collect::<Vec<_>>(), "jobs = {jobs}");
            assert!(sched.max_pending < reorder_window(jobs), "jobs = {jobs}");
            assert_eq!(sched.workers, jobs, "jobs = {jobs}");
            assert_eq!(
                sched.per_worker.iter().sum::<u64>(),
                257,
                "every task is accounted to exactly one worker at jobs = {jobs}"
            );
            assert!(
                sched.per_worker.windows(2).all(|w| w[0] >= w[1]),
                "per-worker load is reported sorted descending"
            );
            assert_eq!(sched.task_nanos.count(), 257, "one timing sample per task");
        }
    }

    #[test]
    fn reorder_buffer_is_bounded_by_the_window_even_with_a_stalled_frontier() {
        // Task 0 is made much slower than everything else, so the other
        // workers sprint ahead — the window must stop them.
        let window = 8;
        let mut count = 0usize;
        let sched = run_ordered(
            10_000,
            4,
            window,
            || (),
            |i, (): &mut ()| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                i
            },
            |_, _| count += 1,
        );
        assert_eq!(count, 10_000);
        assert!(
            sched.max_pending < window,
            "pending {} must stay below the window {window}",
            sched.max_pending
        );
        // The stalled frontier forced workers to block on the window at
        // least once, and that blocking shows up in the wait histogram.
        assert!(
            sched.queue_wait_nanos.count() > 0,
            "a stalled frontier must register queue waits"
        );
        assert!(
            sched.reorder_occupancy.max() as usize <= window,
            "occupancy never exceeds the window"
        );
    }

    #[test]
    fn worker_contexts_are_per_worker() {
        let contexts = AtomicU64::new(0);
        let mut delivered = 0u64;
        run_ordered(
            64,
            4,
            64,
            || {
                contexts.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |_, local: &mut u64| {
                *local += 1;
                *local
            },
            |_, _| delivered += 1,
        );
        assert_eq!(delivered, 64);
        assert!(contexts.load(Ordering::Relaxed) <= 4);
    }
}
