//! The engine's single typed entry point: [`Session`].
//!
//! A session is one configured unit of Monte-Carlo work — a CTMC batch, an
//! agent-simulator batch, a `(λ₀, µ, γ, K)` phase grid, or a Theorem 15
//! coded grid — built once through [`SessionBuilder`] and executed either
//! as a batch ([`Session::run`]) or streamed ([`Session::stream`]) into a
//! caller-supplied [`ReplicationSink`].
//!
//! Everything that can fail — scenario validation, duplicate stream keys,
//! unusable configurations — is rejected by [`SessionBuilder::build`], so
//! execution itself is infallible and a validated session can be run any
//! number of times.
//!
//! # Streaming contract
//!
//! Replication results are **delivered to the sink in a deterministic,
//! scheduling-independent order**: scenario-major, replication-minor,
//! exactly the order a single-threaded run would produce. Workers complete
//! tasks out of order; a bounded reorder window puts them back in sequence
//! before the sink (and the engine's own incremental Welford aggregation)
//! sees them. Consequences:
//!
//! * `run()` and `stream(sink)` produce bit-identical outputs at any
//!   [`EngineConfig::jobs`] value — `run` *is* `stream` with a
//!   [`NullSink`].
//! * aggregation is O(1) memory per scenario: no per-replication `Vec` is
//!   ever collected, so a million-replication scenario aggregates in the
//!   same peak memory as a ten-replication one (the reorder buffer is
//!   hard-capped by the window, which depends on the worker count, never
//!   on the replication count — see [`StreamStats::reorder_window`]).
//!
//! # Fault tolerance
//!
//! A replication that panics is handled according to
//! [`EngineConfig::failure_policy`]: propagated ([`FailurePolicy::FailFast`],
//! the default), caught and delivered in order as a typed
//! [`ReplicationFailure`] ([`FailurePolicy::Quarantine`]), or re-run on the
//! same derived stream ([`FailurePolicy::Retry`]). Sessions built with
//! [`SessionBuilder::checkpoint`] periodically write a crash-consistent
//! checkpoint file, and [`Session::resume`] continues an interrupted run
//! from its completed prefix — producing output byte-identical to an
//! uninterrupted run. [`SessionBuilder::faults`] injects deterministic
//! faults (keyed by stream key, never wall clock) for chaos testing.
//!
//! # Example
//!
//! ```
//! use engine::{EngineConfig, Scenario, Session, Workload};
//! use swarm::SwarmParams;
//!
//! let params = SwarmParams::builder(1)
//!     .seed_rate(1.0)
//!     .contact_rate(1.0)
//!     .seed_departure_rate(2.0)
//!     .fresh_arrivals(1.0)
//!     .build()?;
//! let session = Session::builder()
//!     .config(
//!         EngineConfig::default()
//!             .with_replications(3)
//!             .with_horizon(200.0)
//!             .with_master_seed(7)
//!             .with_jobs(2),
//!     )
//!     .workload(Workload::ctmc(vec![Scenario::new(0, "stable point", params)]))
//!     .build()
//!     .expect("valid session");
//! let outcomes = session.run().into_ctmc().expect("a CTMC workload");
//! assert_eq!(outcomes.len(), 1);
//! assert_eq!(outcomes[0].votes.total(), 3);
//! # Ok::<(), swarm::SwarmError>(())
//! ```

use crate::agent::{
    run_agent_replication_metered_opts, run_agent_replication_opts, AgentOutcome, AgentScenario,
};
use crate::checkpoint::{self, AggSnapshot, CheckpointData, CheckpointSpec};
use crate::coded::{CodedGridSpec, CodedPhaseCell, CodedPhaseDiagram};
use crate::config::{EngineConfig, FailurePolicy};
use crate::error::Error;
use crate::faults::FaultPlan;
use crate::grid::{GridSpec, PhaseCell, PhaseDiagram};
use crate::metrics::ReplicationTelemetry;
use crate::progress::ProgressSink;
use crate::replicate::{
    run_replication_on, verdict_agrees, ClassVotes, ReplicationOutcome, Scenario, ScenarioOutcome,
};
use crate::stats::Welford;
use markov::PathClass;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use swarm::coded::CodedParams;
use swarm::sim::{AgentConfig, KernelKind, SimScratch};
use swarm::{stability, StabilityVerdict, SwarmModel, SwarmParams};
use telemetry::{Histogram, Span};

/// One replication's result, as delivered to a [`ReplicationSink`].
///
/// Records arrive in deterministic scenario-major, replication-minor order
/// regardless of the worker count. CTMC replications report `events`,
/// `transfers`, and `truncated` as zero/false (the type-count simulator
/// does not track them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationRecord {
    /// Index of the scenario within the workload (input order).
    pub scenario_index: usize,
    /// The scenario's stream key.
    pub scenario_id: u64,
    /// Replication index within the scenario.
    pub replication: u32,
    /// Classification of the simulated peer-count path.
    pub class: PathClass,
    /// Tail growth rate of the peer count (peers per unit time).
    pub tail_slope: f64,
    /// Time-average of the peer count over the tail window.
    pub tail_average: f64,
    /// Simulated events executed (agent replications only).
    pub events: u64,
    /// Successful piece transfers (agent replications only).
    pub transfers: u64,
    /// Whether the run hit the `max_events` safety valve (agent
    /// replications only).
    pub truncated: bool,
    /// Per-replication kernel counters and wall time, populated for agent
    /// replications when [`EngineConfig::metrics`] is set (`None` for CTMC
    /// replications and whenever metrics are off). The counters never
    /// perturb the run: records are otherwise identical with metrics on or
    /// off.
    pub telemetry: Option<ReplicationTelemetry>,
}

/// One replication's *failure*, delivered (in stream order, in place of
/// its [`ReplicationRecord`]) when the session's
/// [`EngineConfig::failure_policy`] quarantines a panicking replication
/// instead of aborting.
///
/// The `(scenario_id, replication)` pair is the failed replication's
/// stream key: it is enough to re-run exactly that replication in
/// isolation (e.g. with `run_replication` / `run_agent_replication`) under
/// a debugger, on any machine, at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationFailure {
    /// Index of the scenario within the workload (input order).
    pub scenario_index: usize,
    /// The scenario's stream key.
    pub scenario_id: u64,
    /// Replication index within the scenario.
    pub replication: u32,
    /// Attempts made (1 under `Quarantine`; up to the configured budget
    /// under `Retry`).
    pub attempts: u32,
    /// The panic payload (stringified), or the internal-invariant message
    /// for non-panic failures.
    pub payload: String,
}

/// What a stream is about to deliver, announced via
/// [`ReplicationSink::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPlan {
    /// Number of scenarios in the workload (after grid-cell skipping).
    pub scenarios: usize,
    /// Replications per scenario.
    pub replications: u32,
    /// Total deliveries the sink will receive — successful records plus
    /// quarantined failures. A resumed stream counts the *remaining*
    /// replications plus the checkpointed failures (which are re-announced
    /// right after `begin`), not the already-delivered prefix.
    pub total: u64,
}

/// Post-stream accounting, delivered via [`ReplicationSink::end`].
///
/// Beyond the delivery counts, the stats carry the scheduler's own
/// telemetry: how many workers ran, how the tasks spread across them, and
/// log₂ histograms of per-task wall time, frontier-window waits, and
/// reorder-buffer occupancy. The timing fields are wall-clock (and thus
/// vary run to run); every *delivered record* stays bit-identical at any
/// worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Successful records delivered (equals the plan's total minus
    /// `failed`).
    pub delivered: u64,
    /// Replications that failed and were quarantined (0 under
    /// [`FailurePolicy::FailFast`], which aborts instead).
    pub failed: u64,
    /// Extra attempts spent re-running failed replications under
    /// [`FailurePolicy::Retry`].
    pub retries: u64,
    /// Failures caused by a replication classifying to a non-finite
    /// statistic (NaN/∞ tail slope or tail average). Each is a subset of
    /// [`StreamStats::failed`]: the session rejects the value as a typed
    /// failure instead of letting it poison the scenario aggregates.
    pub non_finite: u64,
    /// High-water mark of the out-of-order reorder buffer. Always strictly
    /// below [`StreamStats::reorder_window`]; independent of the
    /// replication count.
    pub max_pending: usize,
    /// The bounded reorder window: a worker may run at most this many
    /// replications ahead of the delivery frontier, which caps the
    /// buffered results regardless of how many replications the stream
    /// carries.
    pub reorder_window: usize,
    /// Worker threads that actually ran (after clamping to the task
    /// count; `0` for an empty stream).
    pub workers: usize,
    /// Wall-clock duration of the whole stream, begin to end, in seconds.
    pub wall_seconds: f64,
    /// Replications completed per worker, sorted descending — the shape of
    /// the dynamic load balance, stated scheduling-independently.
    pub per_worker: Vec<u64>,
    /// Log₂ histogram of per-task wall times, in nanoseconds (one sample
    /// per replication, any workload kind).
    pub task_nanos: Histogram,
    /// Log₂ histogram of time workers spent blocked on the bounded reorder
    /// window, in nanoseconds (one sample per blocking episode; empty when
    /// no worker ever had to wait).
    pub queue_wait_nanos: Histogram,
    /// Log₂ histogram of the reorder buffer's occupancy observed after
    /// each result was pushed (single-worker streams never buffer, so this
    /// is empty at `jobs = 1`).
    pub reorder_occupancy: Histogram,
}

impl StreamStats {
    /// Stats for a degenerate single-worker stream that delivered
    /// `delivered` records in `wall_seconds` — a convenience for sinks
    /// exercised outside [`Session::stream`] (tests, adapters).
    #[must_use]
    pub fn inline(delivered: u64, wall_seconds: f64) -> Self {
        StreamStats {
            delivered,
            failed: 0,
            retries: 0,
            non_finite: 0,
            max_pending: 0,
            reorder_window: reorder_window(1),
            workers: 1,
            wall_seconds,
            per_worker: vec![delivered],
            task_nanos: Histogram::new(),
            queue_wait_nanos: Histogram::new(),
            reorder_occupancy: Histogram::new(),
        }
    }
}

/// Observer for streamed replication results.
///
/// All methods have empty default implementations, so a sink only
/// implements what it needs. Methods are called from the streaming
/// machinery in deterministic order: one `begin`, then exactly
/// `plan.total` `record` calls (scenario-major, replication-minor), then
/// one `end`. Sinks must be [`Send`]: delivery may happen on worker
/// threads (serialized — never concurrently).
pub trait ReplicationSink {
    /// Announces the stream's shape before the first record.
    fn begin(&mut self, plan: &StreamPlan) {
        let _ = plan;
    }

    /// Receives one replication's result.
    fn record(&mut self, record: &ReplicationRecord) {
        let _ = record;
    }

    /// Receives one replication's quarantined failure (never called under
    /// [`FailurePolicy::FailFast`]). Failures arrive in the same
    /// deterministic stream position their record would have occupied.
    fn failure(&mut self, failure: &ReplicationFailure) {
        let _ = failure;
    }

    /// Announces the end of the stream with its accounting.
    fn end(&mut self, stats: &StreamStats) {
        let _ = stats;
    }
}

/// A sink that discards everything — [`Session::run`] streams into this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ReplicationSink for NullSink {}

/// The work a [`Session`] executes. Construct one with [`Workload::ctmc`],
/// [`Workload::agent`], [`Workload::grid`], or [`Workload::coded`].
#[derive(Debug, Clone)]
pub struct Workload {
    kind: WorkloadKind,
}

#[derive(Debug, Clone)]
enum WorkloadKind {
    Ctmc(Vec<Scenario>),
    Agent(Vec<AgentScenario>),
    Grid {
        spec: GridSpec,
        coords: Vec<(usize, f64, f64, f64)>,
        scenarios: Vec<Scenario>,
        skipped: usize,
    },
    Coded {
        spec: CodedGridSpec,
        coords: Vec<(usize, u64, f64)>,
        scenarios: Vec<AgentScenario>,
        skipped: usize,
    },
}

impl Workload {
    /// A batch of type-count CTMC scenarios (the Theorem 1 path).
    #[must_use]
    pub fn ctmc(scenarios: Vec<Scenario>) -> Self {
        Workload {
            kind: WorkloadKind::Ctmc(scenarios),
        }
    }

    /// A batch of agent-simulator scenarios (policies, flash crowds, retry
    /// speed-up, coded kernels).
    #[must_use]
    pub fn agent(scenarios: Vec<AgentScenario>) -> Self {
        Workload {
            kind: WorkloadKind::Agent(scenarios),
        }
    }

    /// A `(λ₀, µ, γ, K)` phase-diagram sweep. `make_params` constructs the
    /// model at each cell; cells where it returns `None` are skipped (and
    /// counted in [`PhaseDiagram::skipped`]). Scenario ids are the cell's
    /// linear index in the rectangle, so a cell's random streams depend
    /// only on its position and the master seed — not on how many other
    /// cells were skipped.
    #[must_use]
    pub fn grid<F>(spec: &GridSpec, make_params: F) -> Self
    where
        F: Fn(usize, f64, f64, f64) -> Option<SwarmParams>,
    {
        let mut coords = Vec::new();
        let mut scenarios = Vec::new();
        let mut skipped = 0usize;
        let mut linear_index = 0u64;
        for &k in &spec.pieces {
            for &mu in &spec.mu.values {
                for &gamma in &spec.gamma.values {
                    for &lambda0 in &spec.lambda0.values {
                        match make_params(k, mu, gamma, lambda0) {
                            Some(params) => {
                                let label = format!(
                                    "K={k},{}={mu},{}={gamma},{}={lambda0}",
                                    spec.mu.label, spec.gamma.label, spec.lambda0.label
                                );
                                coords.push((k, mu, gamma, lambda0));
                                scenarios.push(Scenario::new(linear_index, label, params));
                            }
                            None => skipped += 1,
                        }
                        linear_index += 1;
                    }
                }
            }
        }
        Workload {
            kind: WorkloadKind::Grid {
                spec: spec.clone(),
                coords,
                scenarios,
                skipped,
            },
        }
    }

    /// A Theorem 15 `(f, q, K)` coded phase-diagram sweep on the coded
    /// kernel (or the bitsliced coded-turbo kernel when `spec.sim.kernel`
    /// asks for it). Cells whose parameters fail to construct (an unsupported
    /// field order, an invalid fraction) are skipped and counted in
    /// [`CodedPhaseDiagram::skipped`]; scenario ids are linear cell
    /// indices.
    #[must_use]
    pub fn coded(spec: &CodedGridSpec) -> Self {
        let mut coords = Vec::new();
        let mut scenarios = Vec::new();
        let mut skipped = 0usize;
        let mut linear_index = 0u64;
        // A coded sweep honours an explicit coded-turbo request (the
        // bitsliced GF(2) kernel); any other configured kernel is overridden
        // to the reference coded kernel.
        let kernel = if spec.sim.kernel == KernelKind::CodedTurbo {
            KernelKind::CodedTurbo
        } else {
            KernelKind::Coded
        };
        let sim_config = AgentConfig { kernel, ..spec.sim };
        for &k in &spec.pieces {
            for &q in &spec.field_orders {
                for &f in &spec.gift_fraction.values {
                    match CodedParams::gift_example(
                        k,
                        q,
                        spec.lambda_total,
                        f,
                        spec.seed_rate,
                        spec.contact_rate,
                        spec.seed_departure_rate,
                    ) {
                        Ok(params) => {
                            let mut scenario = AgentScenario::new(
                                linear_index,
                                format!("K={k},q={q},f={f}"),
                                params.base.clone(),
                            );
                            scenario.coding = Some(params.gifts());
                            scenario.config = sim_config;
                            coords.push((k, q, f));
                            scenarios.push(scenario);
                        }
                        Err(_) => skipped += 1,
                    }
                    linear_index += 1;
                }
            }
        }
        Workload {
            kind: WorkloadKind::Coded {
                spec: spec.clone(),
                coords,
                scenarios,
                skipped,
            },
        }
    }

    /// Number of scenarios the workload will replicate (after grid-cell
    /// skipping).
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.kind {
            WorkloadKind::Ctmc(s) | WorkloadKind::Grid { scenarios: s, .. } => s.len(),
            WorkloadKind::Agent(s) | WorkloadKind::Coded { scenarios: s, .. } => s.len(),
        }
    }

    /// Returns `true` if the workload has no scenarios to run.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The result of executing a [`Session`] — one variant per workload kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutput {
    /// Aggregated CTMC outcomes, in input order.
    Ctmc(Vec<ScenarioOutcome>),
    /// Aggregated agent outcomes, in input order.
    Agent(Vec<AgentOutcome>),
    /// An evaluated `(λ₀, µ, γ, K)` phase diagram.
    Grid(PhaseDiagram),
    /// An evaluated Theorem 15 coded phase diagram.
    Coded(CodedPhaseDiagram),
}

impl SessionOutput {
    /// The CTMC outcomes, if this was a [`Workload::ctmc`] session.
    #[must_use]
    pub fn into_ctmc(self) -> Option<Vec<ScenarioOutcome>> {
        match self {
            SessionOutput::Ctmc(outcomes) => Some(outcomes),
            _ => None,
        }
    }

    /// The agent outcomes, if this was a [`Workload::agent`] session.
    #[must_use]
    pub fn into_agent(self) -> Option<Vec<AgentOutcome>> {
        match self {
            SessionOutput::Agent(outcomes) => Some(outcomes),
            _ => None,
        }
    }

    /// The phase diagram, if this was a [`Workload::grid`] session.
    #[must_use]
    pub fn into_grid(self) -> Option<PhaseDiagram> {
        match self {
            SessionOutput::Grid(diagram) => Some(diagram),
            _ => None,
        }
    }

    /// The coded phase diagram, if this was a [`Workload::coded`] session.
    #[must_use]
    pub fn into_coded(self) -> Option<CodedPhaseDiagram> {
        match self {
            SessionOutput::Coded(diagram) => Some(diagram),
            _ => None,
        }
    }
}

/// Builder for a [`Session`]; all validation happens in
/// [`SessionBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    config: Option<EngineConfig>,
    workload: Option<Workload>,
    faults: Option<FaultPlan>,
    checkpoint: Option<CheckpointSpec>,
}

impl SessionBuilder {
    /// Sets the execution configuration (defaults to
    /// [`EngineConfig::default`] when omitted).
    #[must_use]
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the workload to execute.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Injects deterministic faults at the plan's stream keys (chaos
    /// testing). An empty plan is equivalent to not setting one.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables crash-consistent checkpointing: the session atomically
    /// rewrites `spec.path` every `spec.every` delivered records (and once
    /// at stream end), so an interrupted run can continue via
    /// [`Session::resume`]. Checkpoint *write* failures never abort the
    /// run; they are reported on stderr and the run continues.
    #[must_use]
    pub fn checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Validates the configuration and every scenario, returning a session
    /// whose execution cannot fail.
    ///
    /// # Errors
    ///
    /// * [`Error::MissingWorkload`] — no workload was supplied,
    /// * [`Error::InvalidConfig`] — non-positive horizon or a confidence
    ///   level outside `(0, 1)`,
    /// * [`Error::DuplicateScenarioId`] — two scenarios share a stream
    ///   key,
    /// * [`Error::Scenario`] — an agent scenario's policy, simulator
    ///   configuration, initial population, or flash schedule failed
    ///   validation.
    pub fn build(self) -> Result<Session, Error> {
        let config = self.config.unwrap_or_default();
        let workload = self.workload.ok_or(Error::MissingWorkload)?;
        if config.horizon.is_nan() || config.horizon <= 0.0 {
            return Err(Error::InvalidConfig(format!(
                "horizon must be positive, got {}",
                config.horizon
            )));
        }
        if config.confidence.is_nan() || config.confidence <= 0.0 || config.confidence >= 1.0 {
            return Err(Error::InvalidConfig(format!(
                "confidence must lie in (0, 1), got {}",
                config.confidence
            )));
        }
        match &workload.kind {
            WorkloadKind::Ctmc(scenarios) => {
                check_unique_ids(scenarios.iter().map(|s| s.id))?;
            }
            WorkloadKind::Agent(scenarios) => {
                check_unique_ids(scenarios.iter().map(|s| s.id))?;
                validate_agent_scenarios(scenarios, &config)?;
            }
            // Grid cells carry their linear rectangle index as id: unique
            // by construction.
            WorkloadKind::Grid { .. } => {}
            WorkloadKind::Coded { scenarios, .. } => validate_agent_scenarios(scenarios, &config)?,
        }
        Ok(Session {
            config,
            workload,
            faults: self.faults.filter(|plan| !plan.is_empty()),
            checkpoint: self.checkpoint,
        })
    }
}

fn check_unique_ids(ids: impl Iterator<Item = u64>) -> Result<(), Error> {
    let mut seen: Vec<u64> = ids.collect();
    seen.sort_unstable();
    for pair in seen.windows(2) {
        if pair[0] == pair[1] {
            return Err(Error::DuplicateScenarioId(pair[0]));
        }
    }
    Ok(())
}

fn validate_agent_scenarios(
    scenarios: &[AgentScenario],
    config: &EngineConfig,
) -> Result<(), Error> {
    for scenario in scenarios {
        scenario
            .validate()
            .and_then(|()| scenario.validate_sharding(config))
            .map_err(|source| Error::Scenario {
                label: scenario.label.clone(),
                source,
            })?;
    }
    Ok(())
}

/// A validated, repeatedly executable unit of Monte-Carlo work.
///
/// See the [module docs](self) for the streaming contract and an example.
#[derive(Debug, Clone)]
pub struct Session {
    config: EngineConfig,
    workload: Workload,
    faults: Option<FaultPlan>,
    checkpoint: Option<CheckpointSpec>,
}

impl Session {
    /// Starts building a session.
    #[must_use]
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The session's execution configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The session's workload.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Runs the workload as a batch and returns the aggregated output.
    ///
    /// Implemented on top of [`Session::stream`] with a [`NullSink`], so
    /// batch and streaming execution are one code path and produce
    /// bit-identical results.
    #[must_use]
    pub fn run(&self) -> SessionOutput {
        self.stream(&mut NullSink)
    }

    /// Runs the workload, delivering every replication's result to `sink`
    /// in deterministic scenario-major, replication-minor order, and
    /// returns the same aggregated output as [`Session::run`].
    ///
    /// When [`EngineConfig::progress`] is set, a built-in
    /// [`ProgressSink`] additionally reports decile progress on stderr.
    pub fn stream<S: ReplicationSink + Send>(&self, sink: &mut S) -> SessionOutput {
        self.stream_from(sink, None)
    }

    /// Resumes an interrupted run from a checkpoint file and returns the
    /// completed output (batch mode; see [`Session::resume_stream`]).
    ///
    /// The finished output is byte-identical to an uninterrupted
    /// [`Session::run`]: the checkpoint restores the exact aggregation
    /// state of the completed prefix, and the remaining replications run
    /// on their own derived streams as always.
    ///
    /// # Errors
    ///
    /// * [`Error::CheckpointIo`] — the file cannot be read,
    /// * [`Error::CheckpointCorrupt`] — the file fails structural
    ///   validation (bad header, torn write, checksum mismatch) or does
    ///   not fit this workload's shape,
    /// * [`Error::CheckpointMismatch`] — the file was written by a session
    ///   with a different config or workload.
    pub fn resume(&self, path: impl AsRef<Path>) -> Result<SessionOutput, Error> {
        self.resume_stream(path, &mut NullSink)
    }

    /// Resumes an interrupted run from a checkpoint file, streaming the
    /// *remaining* replications (and re-announcing any checkpointed
    /// failures right after `begin`) into `sink`.
    ///
    /// # Errors
    ///
    /// See [`Session::resume`].
    pub fn resume_stream<S: ReplicationSink + Send>(
        &self,
        path: impl AsRef<Path>,
        sink: &mut S,
    ) -> Result<SessionOutput, Error> {
        let path = path.as_ref();
        let data = checkpoint::load(path)?;
        let expected = self.checkpoint_digest();
        if data.digest != expected {
            return Err(Error::CheckpointMismatch {
                path: path.display().to_string(),
                found: data.digest,
                expected,
            });
        }
        let reps = u64::from(self.config.replications.max(1));
        let total = self.workload.len() as u64 * reps;
        if data.kind != self.kind_tag() || data.total != total || data.reps != reps {
            return Err(Error::CheckpointCorrupt {
                path: path.display().to_string(),
                message: format!(
                    "shape mismatch: checkpoint is {} {}×{}, session is {} {}×{}",
                    data.kind,
                    data.total,
                    data.reps,
                    self.kind_tag(),
                    total,
                    reps
                ),
            });
        }
        Ok(self.stream_from(sink, Some(data)))
    }

    /// The digest binding checkpoints to this session: a content hash of
    /// every config field that influences the numbers (worker count,
    /// progress, and metrics are deliberately excluded — they never change
    /// results) plus the full workload description.
    fn checkpoint_digest(&self) -> u64 {
        let c = &self.config;
        let mut desc = format!(
            "replications={} horizon={:016x} master_seed={:016x} \
             initial_one_club={} confidence={:016x} policy={:?} shards={} \
             sync_window={:016x} kind={}\n",
            c.replications,
            c.horizon.to_bits(),
            c.master_seed,
            c.initial_one_club,
            c.confidence.to_bits(),
            c.failure_policy,
            c.shards,
            c.sync_window.to_bits(),
            self.kind_tag(),
        );
        match &self.workload.kind {
            WorkloadKind::Ctmc(scenarios) | WorkloadKind::Grid { scenarios, .. } => {
                for s in scenarios {
                    desc.push_str(&format!("{s:?}\n"));
                }
            }
            WorkloadKind::Agent(scenarios) | WorkloadKind::Coded { scenarios, .. } => {
                for s in scenarios {
                    desc.push_str(&format!("{s:?}\n"));
                }
            }
        }
        checkpoint::fnv1a64(desc.as_bytes())
    }

    /// The checkpoint family tag of this workload's replication path.
    fn kind_tag(&self) -> &'static str {
        match &self.workload.kind {
            WorkloadKind::Ctmc(_) | WorkloadKind::Grid { .. } => "ctmc",
            WorkloadKind::Agent(_) | WorkloadKind::Coded { .. } => "agent",
        }
    }

    fn stream_from<S: ReplicationSink + Send>(
        &self,
        sink: &mut S,
        resume: Option<CheckpointData>,
    ) -> SessionOutput {
        match &self.workload.kind {
            WorkloadKind::Ctmc(scenarios) => {
                SessionOutput::Ctmc(self.stream_ctmc(scenarios, sink, resume))
            }
            WorkloadKind::Agent(scenarios) => {
                SessionOutput::Agent(self.stream_agent(scenarios, sink, resume))
            }
            WorkloadKind::Grid {
                spec,
                coords,
                scenarios,
                skipped,
            } => {
                let outcomes = self.stream_ctmc(scenarios, sink, resume);
                let cells = coords
                    .iter()
                    .zip(outcomes)
                    .map(|(&(pieces, mu, gamma, lambda0), outcome)| PhaseCell {
                        pieces,
                        mu,
                        gamma,
                        lambda0,
                        outcome,
                    })
                    .collect();
                SessionOutput::Grid(PhaseDiagram {
                    spec: spec.clone(),
                    cells,
                    skipped: *skipped,
                })
            }
            WorkloadKind::Coded {
                spec,
                coords,
                scenarios,
                skipped,
            } => {
                let outcomes = self.stream_agent(scenarios, sink, resume);
                let cells = coords
                    .iter()
                    .zip(outcomes)
                    .map(
                        |(&(pieces, field_order, gift_fraction), outcome)| CodedPhaseCell {
                            pieces,
                            field_order,
                            gift_fraction,
                            outcome,
                        },
                    )
                    .collect();
                SessionOutput::Coded(CodedPhaseDiagram {
                    spec: spec.clone(),
                    cells,
                    skipped: *skipped,
                })
            }
        }
    }

    fn stream_ctmc<S: ReplicationSink + Send>(
        &self,
        scenarios: &[Scenario],
        sink: &mut S,
        resume: Option<CheckpointData>,
    ) -> Vec<ScenarioOutcome> {
        let config = &self.config;
        let start = resume.as_ref().map_or(0, |d| d.frontier as usize);
        let carried = resume.as_ref().map_or(0, |d| d.failures.len());
        let mut framing = StreamFraming::begin(config, scenarios.len(), start, carried, sink);
        let (total, window, reps) = (framing.total, framing.window, framing.reps);

        // One model per scenario, shared (read-only) by its replications —
        // the `2^K` type space is built once, not per replication.
        let models: Vec<SwarmModel> = scenarios
            .iter()
            .map(|s| SwarmModel::new(s.params.clone()))
            .collect();

        let mut outcomes: Vec<ScenarioOutcome> = Vec::with_capacity(scenarios.len());
        let mut agg = CtmcAggregate::new();
        let mut failures: Vec<ReplicationFailure> = Vec::new();
        let keep_snaps = self.checkpoint.is_some();
        let ckpt_digest = if keep_snaps {
            self.checkpoint_digest()
        } else {
            0
        };
        let mut completed_snaps: Vec<AggSnapshot> = Vec::new();

        if let Some(data) = resume {
            framing.retries = data.retries;
            failures = data.failures;
            for f in &failures {
                framing.failure(f);
            }
            let completed = start / reps;
            for (s, snap) in data.snapshots.iter().enumerate().take(completed) {
                agg.restore(snap);
                outcomes.push(agg.finish(&scenarios[s], config));
            }
            if keep_snaps {
                completed_snaps = data.snapshots[..completed].to_vec();
            }
            if !start.is_multiple_of(reps) {
                agg.restore(&data.snapshots[completed]);
            }
        }

        let policy = config.failure_policy;
        let faults = self.faults.as_ref();
        let sched = run_ordered(
            start,
            total,
            config.jobs,
            window,
            || (),
            |index, ctx: &mut ()| {
                let (s, r) = (index / reps, (index % reps) as u32);
                run_with_policy(
                    policy,
                    faults,
                    scenarios[s].id,
                    r,
                    ctx,
                    || (),
                    |_, _ctx| Ok(run_replication_on(&models[s], &scenarios[s], config, r)),
                )
            },
            |index, result: TaskOutput<ReplicationOutcome>| {
                let (s, r) = (index / reps, index % reps);
                if r == 0 {
                    agg.begin(stability::classify(&scenarios[s].params).verdict);
                }
                match result {
                    TaskOutput::Ok {
                        value: outcome,
                        retries,
                    } => {
                        framing.retries += u64::from(retries);
                        framing.record(&ReplicationRecord {
                            scenario_index: s,
                            scenario_id: scenarios[s].id,
                            replication: r as u32,
                            class: outcome.class,
                            tail_slope: outcome.tail_slope,
                            tail_average: outcome.tail_average,
                            events: 0,
                            transfers: 0,
                            truncated: false,
                            telemetry: None,
                        });
                        agg.push(&outcome);
                    }
                    TaskOutput::Failed { attempts, payload } => quarantine(
                        &mut framing,
                        &mut agg.failed,
                        &mut failures,
                        policy,
                        ReplicationFailure {
                            scenario_index: s,
                            scenario_id: scenarios[s].id,
                            replication: r as u32,
                            attempts,
                            payload,
                        },
                    ),
                }
                if r + 1 == reps {
                    if keep_snaps {
                        completed_snaps.push(agg.snapshot());
                    }
                    outcomes.push(agg.finish(&scenarios[s], config));
                }
                if let Some(spec) = &self.checkpoint {
                    write_checkpoint(
                        spec,
                        ckpt_digest,
                        "ctmc",
                        index,
                        total,
                        reps,
                        &framing,
                        &failures,
                        &completed_snaps,
                        || agg.snapshot(),
                    );
                }
            },
        );

        framing.end(sched);
        outcomes
    }

    fn stream_agent<S: ReplicationSink + Send>(
        &self,
        scenarios: &[AgentScenario],
        sink: &mut S,
        resume: Option<CheckpointData>,
    ) -> Vec<AgentOutcome> {
        let config = &self.config;
        let start = resume.as_ref().map_or(0, |d| d.frontier as usize);
        let carried = resume.as_ref().map_or(0, |d| d.failures.len());
        let mut framing = StreamFraming::begin(config, scenarios.len(), start, carried, sink);
        let (total, window, reps) = (framing.total, framing.window, framing.reps);

        let mut outcomes: Vec<AgentOutcome> = Vec::with_capacity(scenarios.len());
        let mut agg = AgentAggregate::new();
        let mut failures: Vec<ReplicationFailure> = Vec::new();
        let keep_snaps = self.checkpoint.is_some();
        let ckpt_digest = if keep_snaps {
            self.checkpoint_digest()
        } else {
            0
        };
        let mut completed_snaps: Vec<AggSnapshot> = Vec::new();

        if let Some(data) = resume {
            framing.retries = data.retries;
            failures = data.failures;
            for f in &failures {
                framing.failure(f);
            }
            let completed = start / reps;
            for (s, snap) in data.snapshots.iter().enumerate().take(completed) {
                agg.restore(snap);
                outcomes.push(agg.finish(&scenarios[s], config));
            }
            if keep_snaps {
                completed_snaps = data.snapshots[..completed].to_vec();
            }
            if !start.is_multiple_of(reps) {
                agg.restore(&data.snapshots[completed]);
            }
        }

        let policy = config.failure_policy;
        let faults = self.faults.as_ref();
        // Session-level worker allocation: when the stream has fewer
        // replication tasks than workers (the single-giant-replication
        // case sharding exists for), the surplus workers go to each task's
        // shard segments instead of idling. Pure scheduling — shard_jobs
        // never changes any result.
        let workers = effective_jobs(config.jobs);
        let outer = workers.min(total.saturating_sub(start).max(1));
        let shard_jobs = (workers / outer).max(1);
        let sched =
            run_ordered(
                start,
                total,
                config.jobs,
                window,
                // One scratch arena per worker: every replication a worker
                // serves reuses its buffers, so a warm stream allocates nothing
                // per task. The scratch never changes the numbers.
                SimScratch::new,
                |index, scratch: &mut SimScratch| {
                    let (s, r) = (index / reps, (index % reps) as u32);
                    // The metered path runs the identical simulation through a
                    // counting recorder (no extra draws), so the outcome is
                    // bit-identical either way; only the side channel differs.
                    // A post-validation simulator error is an internal
                    // invariant violation: it becomes a structured failure (or,
                    // under FailFast, a panic) instead of an unwrap.
                    let invariant = |e: swarm::SwarmError| {
                        format!(
                            "internal invariant violated: scenario `{}` failed \
                         after session validation: {e}",
                            scenarios[s].label
                        )
                    };
                    run_with_policy(
                        policy,
                        faults,
                        scenarios[s].id,
                        r,
                        scratch,
                        SimScratch::new,
                        |_, scratch| {
                            let mut pair = if config.metrics {
                                let (outcome, telemetry) = run_agent_replication_metered_opts(
                                    &scenarios[s],
                                    config,
                                    r,
                                    scratch,
                                    shard_jobs,
                                )
                                .map_err(invariant)?;
                                (outcome, Some(telemetry))
                            } else {
                                let outcome = run_agent_replication_opts(
                                    &scenarios[s],
                                    config,
                                    r,
                                    scratch,
                                    shard_jobs,
                                )
                                .map_err(invariant)?;
                                (outcome, None)
                            };
                            // Injected metric corruption (chaos `nan`
                            // faults) poisons the classification after the
                            // run, exercising the same rejection a real
                            // estimator bug would hit.
                            if faults.is_some_and(|p| p.corrupts_metrics(scenarios[s].id, r)) {
                                pair.0.tail_slope = f64::NAN;
                            }
                            check_finite(&pair.0, &scenarios[s].label)?;
                            Ok(pair)
                        },
                    )
                },
                |index,
                 result: TaskOutput<(
                    crate::agent::AgentReplication,
                    Option<ReplicationTelemetry>,
                )>| {
                    let (s, r) = (index / reps, index % reps);
                    if r == 0 {
                        agg.begin(crate::agent::scenario_theory(&scenarios[s]));
                    }
                    match result {
                        TaskOutput::Ok {
                            value: (outcome, telemetry),
                            retries,
                        } => {
                            framing.retries += u64::from(retries);
                            framing.record(&ReplicationRecord {
                                scenario_index: s,
                                scenario_id: scenarios[s].id,
                                replication: r as u32,
                                class: outcome.class,
                                tail_slope: outcome.tail_slope,
                                tail_average: outcome.tail_average,
                                events: outcome.events,
                                transfers: outcome.transfers,
                                truncated: outcome.truncated,
                                telemetry,
                            });
                            agg.push(&outcome);
                        }
                        TaskOutput::Failed { attempts, payload } => quarantine(
                            &mut framing,
                            &mut agg.failed,
                            &mut failures,
                            policy,
                            ReplicationFailure {
                                scenario_index: s,
                                scenario_id: scenarios[s].id,
                                replication: r as u32,
                                attempts,
                                payload,
                            },
                        ),
                    }
                    if r + 1 == reps {
                        if keep_snaps {
                            completed_snaps.push(agg.snapshot());
                        }
                        outcomes.push(agg.finish(&scenarios[s], config));
                    }
                    if let Some(spec) = &self.checkpoint {
                        write_checkpoint(
                            spec,
                            ckpt_digest,
                            "agent",
                            index,
                            total,
                            reps,
                            &framing,
                            &failures,
                            &completed_snaps,
                            || agg.snapshot(),
                        );
                    }
                },
            );

        framing.end(sched);
        outcomes
    }
}

/// Prefix of every failure payload produced by [`check_finite`]; the
/// framing counts payloads carrying it into [`StreamStats::non_finite`].
const NON_FINITE_MARKER: &str = "non-finite statistic";

/// Rejects a replication whose classification produced a non-finite
/// statistic: a NaN or infinite tail slope / tail average would silently
/// poison the scenario's Welford aggregates (the accumulator now counts
/// rather than absorbs such values, but a vote from a garbage trajectory
/// is still a vote). The error becomes a typed quarantined failure — or a
/// panic under [`FailurePolicy::FailFast`] — never a silently-NaN
/// artifact.
fn check_finite(outcome: &crate::agent::AgentReplication, label: &str) -> Result<(), String> {
    for (name, value) in [
        ("tail_slope", outcome.tail_slope),
        ("tail_average", outcome.tail_average),
    ] {
        if !value.is_finite() {
            return Err(format!(
                "{NON_FINITE_MARKER}: scenario `{label}` replication {} \
                 classified with {name} = {value}; rejecting the replication \
                 instead of aggregating it",
                outcome.replication
            ));
        }
    }
    Ok(())
}

/// The per-failure delivery path shared by the CTMC and agent streams:
/// forwards the typed failure to the sink, counts it in the scenario
/// aggregate, and enforces the quarantine budget (exhaustion aborts the
/// stream by panicking, which [`FailurePolicy::FailFast`]-style propagates
/// out of `run`/`stream`).
fn quarantine<S: ReplicationSink>(
    framing: &mut StreamFraming<'_, S>,
    agg_failed: &mut u32,
    failures: &mut Vec<ReplicationFailure>,
    policy: FailurePolicy,
    failure: ReplicationFailure,
) {
    // The attempts beyond the first were retries, even though they never
    // produced a record — account for them so the end-frame algebra covers
    // exhausted replications too.
    framing.retries += u64::from(failure.attempts.saturating_sub(1));
    framing.failure(&failure);
    *agg_failed += 1;
    failures.push(failure);
    if let FailurePolicy::Quarantine { max_failures } = policy {
        if failures.len() as u64 > u64::from(max_failures) {
            panic!(
                "session aborted: {} replications failed, exceeding the \
                 quarantine budget of {max_failures}",
                failures.len()
            );
        }
    }
}

/// Writes a checkpoint when the delivery frontier crosses the spec's
/// interval (or finishes the stream). Write failures warn and continue:
/// losing a checkpoint must never take down an otherwise healthy run.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint<S: ReplicationSink>(
    spec: &CheckpointSpec,
    digest: u64,
    kind: &'static str,
    index: usize,
    total: usize,
    reps: usize,
    framing: &StreamFraming<'_, S>,
    failures: &[ReplicationFailure],
    completed_snaps: &[AggSnapshot],
    partial: impl FnOnce() -> AggSnapshot,
) {
    let frontier = (index + 1) as u64;
    if !frontier.is_multiple_of(spec.every) && frontier != total as u64 {
        return;
    }
    let mut snapshots = completed_snaps.to_vec();
    if !frontier.is_multiple_of(reps as u64) {
        snapshots.push(partial());
    }
    let data = CheckpointData {
        digest,
        kind,
        total: total as u64,
        reps: reps as u64,
        frontier,
        retries: framing.retries,
        failures: failures.to_vec(),
        snapshots,
    };
    if let Err(error) = checkpoint::save(&spec.path, &data) {
        eprintln!(
            "warning: failed to write checkpoint {}: {error}",
            spec.path.display()
        );
    }
}

/// What one replication task produced: a value (possibly after retries) or
/// a quarantined failure.
enum TaskOutput<T> {
    Ok {
        value: T,
        /// Extra attempts spent before succeeding (0 on first try).
        retries: u32,
    },
    Failed {
        /// Total attempts made.
        attempts: u32,
        /// Stringified panic payload or invariant message.
        payload: String,
    },
}

/// Stringifies a caught panic payload (`String` and `&str` payloads pass
/// through verbatim; anything else gets a fixed marker so failure records
/// stay deterministic).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one replication attempt (or several, under `Retry`) according to
/// the failure policy, applying any injected faults first.
///
/// Under [`FailurePolicy::FailFast`] there is no `catch_unwind` at all —
/// the historical zero-overhead path: a panic unwinds through the worker
/// and aborts the session, and an invariant failure is converted into a
/// panic with the same payload. The other policies catch the unwind and
/// return a typed [`TaskOutput::Failed`]; after a caught panic the worker
/// context is rebuilt with `fresh` (the panic may have left it
/// mid-mutation). Invariant failures (`Err` from `attempt`) are never
/// retried — they are deterministic, so re-running cannot help.
fn run_with_policy<T, C>(
    policy: FailurePolicy,
    faults: Option<&FaultPlan>,
    scenario_id: u64,
    replication: u32,
    ctx: &mut C,
    fresh: impl Fn() -> C,
    attempt: impl Fn(u32, &mut C) -> Result<T, String>,
) -> TaskOutput<T> {
    let inject = |n: u32| {
        if let Some(plan) = faults {
            plan.apply(scenario_id, replication, n);
        }
    };
    let budget = match policy {
        FailurePolicy::FailFast => {
            inject(0);
            return match attempt(0, ctx) {
                Ok(value) => TaskOutput::Ok { value, retries: 0 },
                Err(message) => std::panic::panic_any(message),
            };
        }
        FailurePolicy::Quarantine { .. } => 1,
        FailurePolicy::Retry { attempts, .. } => attempts.max(1),
    };
    let backoff_ms = match policy {
        FailurePolicy::Retry { backoff_ms, .. } => backoff_ms,
        _ => 0,
    };
    let mut last_payload = String::new();
    for n in 0..budget {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inject(n);
            attempt(n, &mut *ctx)
        }));
        match caught {
            Ok(Ok(value)) => return TaskOutput::Ok { value, retries: n },
            Ok(Err(message)) => {
                return TaskOutput::Failed {
                    attempts: n + 1,
                    payload: message,
                }
            }
            Err(payload) => {
                *ctx = fresh();
                last_payload = panic_message(payload);
                if n + 1 < budget && backoff_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(
                        backoff_ms * u64::from(n + 1),
                    ));
                }
            }
        }
    }
    TaskOutput::Failed {
        attempts: budget,
        payload: last_payload,
    }
}

/// The begin/record/end sink protocol shared by every workload kind: one
/// place announces the plan, fans each record out to the caller's sink
/// (and, when [`EngineConfig::progress`] is set, the built-in
/// [`ProgressSink`]), and emits the closing [`StreamStats`] — so the CTMC
/// and agent paths cannot drift apart on the sink contract.
struct StreamFraming<'s, S: ReplicationSink> {
    sink: &'s mut S,
    progress: Option<ProgressSink>,
    /// Total records of the full stream (absolute, including any resumed
    /// prefix).
    total: usize,
    /// Bounded reorder window for this stream's worker count.
    window: usize,
    /// Replications per scenario (clamped to at least one).
    reps: usize,
    /// Successful records delivered to the sink.
    delivered: u64,
    /// Failures delivered to the sink (including re-announced checkpointed
    /// failures on a resumed stream).
    failed: u64,
    /// Retry attempts spent, including any carried over from a checkpoint.
    retries: u64,
    /// Failures whose payload marks a non-finite statistic.
    non_finite: u64,
    /// Wall clock of the whole stream, begin to end.
    span: Span,
}

impl<'s, S: ReplicationSink> StreamFraming<'s, S> {
    /// Announces the plan for a stream resuming at record index `start`
    /// (0 for a fresh stream) that will additionally re-announce
    /// `carried_failures` checkpointed failures.
    fn begin(
        config: &EngineConfig,
        scenarios: usize,
        start: usize,
        carried_failures: usize,
        sink: &'s mut S,
    ) -> Self {
        let reps = config.replications.max(1) as usize;
        let total = scenarios * reps;
        let window = reorder_window(effective_jobs(config.jobs));
        let plan = StreamPlan {
            scenarios,
            replications: reps as u32,
            total: (total - start + carried_failures) as u64,
        };
        let mut progress = config.progress.then(|| ProgressSink::new("session"));
        sink.begin(&plan);
        if let Some(p) = &mut progress {
            p.begin(&plan);
        }
        StreamFraming {
            sink,
            progress,
            total,
            window,
            reps,
            delivered: 0,
            failed: 0,
            retries: 0,
            non_finite: 0,
            span: Span::start(),
        }
    }

    fn record(&mut self, record: &ReplicationRecord) {
        self.delivered += 1;
        self.sink.record(record);
        if let Some(p) = &mut self.progress {
            p.record(record);
        }
    }

    fn failure(&mut self, failure: &ReplicationFailure) {
        self.failed += 1;
        self.non_finite += u64::from(failure.payload.starts_with(NON_FINITE_MARKER));
        self.sink.failure(failure);
        if let Some(p) = &mut self.progress {
            p.failure(failure);
        }
    }

    fn end(mut self, sched: SchedulerStats) {
        let stats = StreamStats {
            delivered: self.delivered,
            failed: self.failed,
            retries: self.retries,
            non_finite: self.non_finite,
            max_pending: sched.max_pending,
            reorder_window: self.window,
            workers: sched.workers,
            wall_seconds: self.span.seconds(),
            per_worker: sched.per_worker,
            task_nanos: sched.task_nanos,
            queue_wait_nanos: sched.queue_wait_nanos,
            reorder_occupancy: sched.reorder_occupancy,
        };
        if let Some(p) = &mut self.progress {
            p.end(&stats);
        }
        self.sink.end(&stats);
    }
}

/// Incremental (O(1)-memory) aggregation of one CTMC scenario's
/// replications, pushed in replication order.
struct CtmcAggregate {
    theory: StabilityVerdict,
    votes: ClassVotes,
    slope: Welford,
    average: Welford,
    agreeing: u32,
    count: u32,
    /// Replications quarantined (no vote, no sample) for this scenario.
    failed: u32,
}

impl CtmcAggregate {
    fn new() -> Self {
        CtmcAggregate {
            theory: StabilityVerdict::Borderline,
            votes: ClassVotes::default(),
            slope: Welford::new(),
            average: Welford::new(),
            agreeing: 0,
            count: 0,
            failed: 0,
        }
    }

    fn begin(&mut self, theory: StabilityVerdict) {
        *self = CtmcAggregate::new();
        self.theory = theory;
    }

    fn push(&mut self, outcome: &ReplicationOutcome) {
        self.votes.push(outcome.class);
        self.slope.push(outcome.tail_slope);
        self.average.push(outcome.tail_average);
        if verdict_agrees(self.theory, outcome.class) {
            self.agreeing += 1;
        }
        self.count += 1;
    }

    /// The full aggregation state, bit-exactly, for checkpointing.
    fn snapshot(&self) -> AggSnapshot {
        AggSnapshot {
            theory: self.theory,
            votes: self.votes,
            slope: self.slope,
            average: self.average,
            events: Welford::new(),
            agreeing: self.agreeing,
            truncated: 0,
            count: self.count,
            failed: self.failed,
        }
    }

    /// Rebuilds the state captured by [`CtmcAggregate::snapshot`].
    fn restore(&mut self, snap: &AggSnapshot) {
        *self = CtmcAggregate {
            theory: snap.theory,
            votes: snap.votes,
            slope: snap.slope,
            average: snap.average,
            agreeing: snap.agreeing,
            count: snap.count,
            failed: snap.failed,
        };
    }

    fn finish(&mut self, scenario: &Scenario, config: &EngineConfig) -> ScenarioOutcome {
        let majority = self.votes.majority();
        ScenarioOutcome {
            scenario_id: scenario.id,
            label: scenario.label.clone(),
            theory: self.theory,
            votes: self.votes,
            majority,
            tail_slope: self.slope.estimate(config.confidence),
            tail_average: self.average.estimate(config.confidence),
            agreement: if self.count == 0 {
                1.0
            } else {
                f64::from(self.agreeing) / f64::from(self.count)
            },
            agrees: verdict_agrees(self.theory, majority),
            failed_replications: self.failed,
        }
    }
}

/// Incremental aggregation of one agent scenario's replications.
struct AgentAggregate {
    theory: StabilityVerdict,
    votes: ClassVotes,
    slope: Welford,
    average: Welford,
    events: Welford,
    truncated: u32,
    /// Replications quarantined (no vote, no sample) for this scenario.
    failed: u32,
}

impl AgentAggregate {
    fn new() -> Self {
        AgentAggregate {
            theory: StabilityVerdict::Borderline,
            votes: ClassVotes::default(),
            slope: Welford::new(),
            average: Welford::new(),
            events: Welford::new(),
            truncated: 0,
            failed: 0,
        }
    }

    fn begin(&mut self, theory: StabilityVerdict) {
        *self = AgentAggregate::new();
        self.theory = theory;
    }

    fn push(&mut self, outcome: &crate::agent::AgentReplication) {
        self.votes.push(outcome.class);
        self.slope.push(outcome.tail_slope);
        self.average.push(outcome.tail_average);
        self.events.push(outcome.events as f64);
        self.truncated += u32::from(outcome.truncated);
    }

    /// The full aggregation state, bit-exactly, for checkpointing.
    fn snapshot(&self) -> AggSnapshot {
        AggSnapshot {
            theory: self.theory,
            votes: self.votes,
            slope: self.slope,
            average: self.average,
            events: self.events,
            agreeing: 0,
            truncated: self.truncated,
            count: 0,
            failed: self.failed,
        }
    }

    /// Rebuilds the state captured by [`AgentAggregate::snapshot`].
    fn restore(&mut self, snap: &AggSnapshot) {
        *self = AgentAggregate {
            theory: snap.theory,
            votes: snap.votes,
            slope: snap.slope,
            average: snap.average,
            events: snap.events,
            truncated: snap.truncated,
            failed: snap.failed,
        };
    }

    fn finish(&mut self, scenario: &AgentScenario, config: &EngineConfig) -> AgentOutcome {
        let majority = self.votes.majority();
        AgentOutcome {
            scenario_id: scenario.id,
            label: scenario.label.clone(),
            theory: self.theory,
            votes: self.votes,
            majority,
            tail_slope: self.slope.estimate(config.confidence),
            tail_average: self.average.estimate(config.confidence),
            agrees: verdict_agrees(self.theory, majority),
            truncated_replications: self.truncated,
            mean_events: self.events.mean(),
            failed_replications: self.failed,
        }
    }
}

/// Resolves a `jobs` setting (0 = one worker per available core).
fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    }
}

/// The bounded reorder window for a worker count: how far a worker may run
/// ahead of the delivery frontier. Scales with the worker count only, so
/// the reorder buffer's peak size is independent of the replication count.
fn reorder_window(jobs: usize) -> usize {
    (jobs * 4).max(64)
}

/// What the scheduler observed about itself while running one stream:
/// worker shape, load balance, and the wall-time histograms surfaced on
/// [`StreamStats`].
#[derive(Debug, Default)]
struct SchedulerStats {
    max_pending: usize,
    workers: usize,
    /// Tasks completed per worker, sorted descending.
    per_worker: Vec<u64>,
    task_nanos: Histogram,
    queue_wait_nanos: Histogram,
    reorder_occupancy: Histogram,
}

/// The in-order delivery frontier shared by the workers.
struct Emitter<T, D: FnMut(usize, T)> {
    next: usize,
    pending: BTreeMap<usize, T>,
    max_pending: usize,
    /// Buffer occupancy observed after each push (under the lock the push
    /// already holds, so the sample is free of extra synchronization).
    occupancy: Histogram,
    panicked: bool,
    deliver: D,
}

impl<T, D: FnMut(usize, T)> Emitter<T, D> {
    fn push(&mut self, index: usize, value: T) {
        if index == self.next {
            (self.deliver)(index, value);
            self.next += 1;
            while let Some(value) = self.pending.remove(&self.next) {
                let index = self.next;
                (self.deliver)(index, value);
                self.next += 1;
            }
        } else {
            self.pending.insert(index, value);
            self.max_pending = self.max_pending.max(self.pending.len());
        }
        self.occupancy.record(self.pending.len() as u64);
    }
}

/// Takes a mutex even when a panicking holder poisoned it. The emitter's
/// protected state is kept consistent by construction (every mutation is a
/// complete push or a flag set), and panic delivery is *expected* under
/// quarantine-budget aborts — surviving workers must still be able to see
/// `panicked` and retire cleanly rather than amplify the abort into a
/// poisoned-mutex panic of their own.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs indexed tasks `start..total` over `jobs` workers, delivering each
/// result through `deliver` in strict index order, and returns the
/// scheduler's self-observation (reorder high-water mark, per-worker load,
/// timing histograms). A nonzero `start` is how a resumed session skips
/// its checkpointed prefix — the frontier opens at `start`, not 0.
///
/// Workers self-schedule off an atomic counter (dynamic load balancing)
/// but may run at most `window` tasks ahead of the delivery frontier, so
/// at most `window − 1` results are ever buffered — bounded memory
/// regardless of `total`. Delivery happens under a lock on whichever
/// worker completes the frontier task; calls are serialized and in order,
/// which is what makes streamed aggregation bit-identical at any worker
/// count. The instrumentation reads the wall clock per task and merges
/// worker-local histograms once at exit — it takes no extra locks on the
/// hot path and never influences scheduling.
///
/// If a task or `deliver` panics (a `FailFast` replication, a quarantine
/// budget abort, a sink bug), every other worker — including ones blocked
/// on the reorder window — observes the `panicked` flag through
/// poison-tolerant locking, stops taking work, and retires without
/// panicking itself. The first panic's payload is captured and re-raised
/// from the calling thread once the workers have shut down, so callers see
/// the original panic message rather than the thread scope's generic
/// "a scoped thread panicked".
fn run_ordered<T, C, MkCtx, Task, Deliver>(
    start: usize,
    total: usize,
    jobs: usize,
    window: usize,
    make_ctx: MkCtx,
    task: Task,
    deliver: Deliver,
) -> SchedulerStats
where
    T: Send,
    MkCtx: Fn() -> C + Sync,
    Task: Fn(usize, &mut C) -> T + Sync,
    Deliver: FnMut(usize, T) + Send,
{
    let remaining = total.saturating_sub(start);
    if remaining == 0 {
        return SchedulerStats::default();
    }
    let jobs = effective_jobs(jobs).min(remaining);
    if jobs <= 1 {
        // Single worker: run inline, delivery is trivially in order.
        let mut ctx = make_ctx();
        let mut deliver = deliver;
        let mut task_nanos = Histogram::new();
        for index in start..total {
            let span = Span::start();
            let value = task(index, &mut ctx);
            task_nanos.record(span.nanos());
            deliver(index, value);
        }
        return SchedulerStats {
            max_pending: 0,
            workers: 1,
            per_worker: vec![remaining as u64],
            task_nanos,
            queue_wait_nanos: Histogram::new(),
            reorder_occupancy: Histogram::new(),
        };
    }

    /// What one worker accumulates locally (merged under a lock only once,
    /// when the worker retires).
    struct WorkerLocal {
        completed: u64,
        task_nanos: Histogram,
        queue_wait_nanos: Histogram,
    }

    let counter = AtomicUsize::new(start);
    let shared = Mutex::new(Emitter {
        next: start,
        pending: BTreeMap::new(),
        max_pending: 0,
        occupancy: Histogram::new(),
        panicked: false,
        deliver,
    });
    let frontier_moved = Condvar::new();
    let locals: Mutex<Vec<WorkerLocal>> = Mutex::new(Vec::with_capacity(jobs));
    // The first worker panic, re-raised below with its original payload.
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // If this worker panics, mark the stream dead and wake
                    // every window-waiter so the panic propagates through the
                    // scope instead of deadlocking the others.
                    struct Abort<'a, T, D: FnMut(usize, T)> {
                        shared: &'a Mutex<Emitter<T, D>>,
                        frontier_moved: &'a Condvar,
                    }
                    impl<T, D: FnMut(usize, T)> Drop for Abort<'_, T, D> {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                // A deliver-panic poisons the mutex while this
                                // very thread unwinds — take it anyway, or the
                                // flag never gets set and waiters hang.
                                lock_clean(self.shared).panicked = true;
                                self.frontier_moved.notify_all();
                            }
                        }
                    }
                    let _abort = Abort {
                        shared: &shared,
                        frontier_moved: &frontier_moved,
                    };

                    let mut ctx = make_ctx();
                    let mut local = WorkerLocal {
                        completed: 0,
                        task_nanos: Histogram::new(),
                        queue_wait_nanos: Histogram::new(),
                    };
                    loop {
                        let index = counter.fetch_add(1, Ordering::Relaxed);
                        if index >= total {
                            break;
                        }
                        {
                            // Bounded window: wait until the frontier is close
                            // enough that this result cannot over-fill the
                            // reorder buffer.
                            let mut emitter = lock_clean(&shared);
                            if index >= emitter.next + window && !emitter.panicked {
                                let wait = Span::start();
                                while index >= emitter.next + window && !emitter.panicked {
                                    emitter = frontier_moved
                                        .wait(emitter)
                                        .unwrap_or_else(PoisonError::into_inner);
                                }
                                local.queue_wait_nanos.record(wait.nanos());
                            }
                            if emitter.panicked {
                                return;
                            }
                        }
                        let span = Span::start();
                        let value = task(index, &mut ctx);
                        local.task_nanos.record(span.nanos());
                        local.completed += 1;
                        let mut emitter = lock_clean(&shared);
                        // The stream may have aborted while this task ran;
                        // delivering now would call into a sink that is being
                        // unwound past. Drop the result instead.
                        if emitter.panicked {
                            return;
                        }
                        emitter.push(index, value);
                        drop(emitter);
                        frontier_moved.notify_all();
                    }
                    lock_clean(&locals).push(local);
                }));
                if let Err(payload) = caught {
                    let mut slot = lock_clean(&first_panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            });
        }
    });

    if let Some(payload) = first_panic
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        std::panic::resume_unwind(payload);
    }

    let emitter = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut stats = SchedulerStats {
        max_pending: emitter.max_pending,
        workers: jobs,
        per_worker: Vec::with_capacity(jobs),
        task_nanos: Histogram::new(),
        queue_wait_nanos: Histogram::new(),
        reorder_occupancy: emitter.occupancy,
    };
    for local in locals.into_inner().unwrap_or_else(PoisonError::into_inner) {
        stats.per_worker.push(local.completed);
        stats.task_nanos.merge(&local.task_nanos);
        stats.queue_wait_nanos.merge(&local.queue_wait_nanos);
    }
    // Scheduling decides which worker ran what; sorting states the load
    // balance shape independently of thread identity.
    stats.per_worker.sort_unstable_by(|a, b| b.cmp(a));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ordered_delivery_is_in_index_order_at_any_worker_count() {
        for jobs in [1usize, 2, 4, 8] {
            let mut seen = Vec::new();
            let sched = run_ordered(
                0,
                257,
                jobs,
                reorder_window(jobs),
                || (),
                |i, (): &mut ()| i * 3,
                |i, v| {
                    assert_eq!(v, i * 3);
                    seen.push(i);
                },
            );
            assert_eq!(seen, (0..257).collect::<Vec<_>>(), "jobs = {jobs}");
            assert!(sched.max_pending < reorder_window(jobs), "jobs = {jobs}");
            assert_eq!(sched.workers, jobs, "jobs = {jobs}");
            assert_eq!(
                sched.per_worker.iter().sum::<u64>(),
                257,
                "every task is accounted to exactly one worker at jobs = {jobs}"
            );
            assert!(
                sched.per_worker.windows(2).all(|w| w[0] >= w[1]),
                "per-worker load is reported sorted descending"
            );
            assert_eq!(sched.task_nanos.count(), 257, "one timing sample per task");
        }
    }

    #[test]
    fn reorder_buffer_is_bounded_by_the_window_even_with_a_stalled_frontier() {
        // Task 0 is made much slower than everything else, so the other
        // workers sprint ahead — the window must stop them.
        let window = 8;
        let mut count = 0usize;
        let sched = run_ordered(
            0,
            10_000,
            4,
            window,
            || (),
            |i, (): &mut ()| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                i
            },
            |_, _| count += 1,
        );
        assert_eq!(count, 10_000);
        assert!(
            sched.max_pending < window,
            "pending {} must stay below the window {window}",
            sched.max_pending
        );
        // The stalled frontier forced workers to block on the window at
        // least once, and that blocking shows up in the wait histogram.
        assert!(
            sched.queue_wait_nanos.count() > 0,
            "a stalled frontier must register queue waits"
        );
        assert!(
            sched.reorder_occupancy.max() as usize <= window,
            "occupancy never exceeds the window"
        );
    }

    #[test]
    fn worker_contexts_are_per_worker() {
        let contexts = AtomicU64::new(0);
        let mut delivered = 0u64;
        run_ordered(
            0,
            64,
            4,
            64,
            || {
                contexts.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |_, local: &mut u64| {
                *local += 1;
                *local
            },
            |_, _| delivered += 1,
        );
        assert_eq!(delivered, 64);
        assert!(contexts.load(Ordering::Relaxed) <= 4);
    }
}
