//! Thread-safe progress reporting for long batches.
//!
//! [`Progress`] is the raw counter; [`ProgressSink`] wraps it as a
//! [`ReplicationSink`] so progress reporting plugs into
//! [`crate::Session::stream`] like any other observer. A session with
//! [`crate::EngineConfig::progress`] set attaches one automatically.

use crate::session::{ReplicationFailure, ReplicationRecord, ReplicationSink, StreamPlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A completed-replication counter shared by the batch workers. Reports to
/// stderr at (roughly) decile boundaries when enabled; a disabled counter
/// still counts, so callers can read totals either way.
///
/// Besides completions the counter accumulates simulated events (fed via
/// [`Progress::add_events`]), so its decile lines report elapsed wall time
/// and a running events-per-second throughput.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    /// Simulated events accumulated across completions.
    events: AtomicU64,
    start: Instant,
    enabled: bool,
}

impl Progress {
    /// A counter expecting `total` completions.
    #[must_use]
    pub fn new(label: impl Into<String>, total: u64, enabled: bool) -> Self {
        Progress {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            events: AtomicU64::new(0),
            start: Instant::now(),
            enabled,
        }
    }

    /// Accumulates simulated events toward the throughput figure (called
    /// before the matching [`Progress::tick`]).
    pub fn add_events(&self, events: u64) {
        self.events.fetch_add(events, Ordering::Relaxed);
    }

    /// Records one completion (called from worker threads).
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled || self.total == 0 {
            return;
        }
        if let Some(percent) = report_percent(done, self.total) {
            let elapsed = self.start.elapsed().as_secs_f64();
            let events = self.events.load(Ordering::Relaxed);
            let rate = if elapsed > 0.0 {
                events as f64 / elapsed
            } else {
                0.0
            };
            eprintln!(
                "[{}] {done}/{} replications ({percent}%) — {elapsed:.1}s elapsed, {rate:.0} ev/s",
                self.label, self.total,
            );
        }
    }

    /// Completions recorded so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Simulated events accumulated so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Expected total completions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The report-line policy, as a pure function so it is testable without
/// capturing stderr: returns `Some(percent)` when completing replication
/// `done` of `total` should print, `None` otherwise.
///
/// At most 10 lines are printed for *any* total: one per crossed decile
/// step for `total ≥ 10`, and a single completion line for smaller totals
/// (the old per-`div_ceil(total, 10)` rule degenerated to a stderr line per
/// replication there). The integer percent is clamped to 99 until the last
/// replication lands, so a partially complete run never claims 100%.
fn report_percent(done: u64, total: u64) -> Option<u64> {
    debug_assert!(total > 0);
    if done >= total {
        return Some(100);
    }
    let step = total.div_ceil(10);
    if total < 10 || !done.is_multiple_of(step) {
        return None;
    }
    Some((100 * done / total).min(99))
}

/// The progress counter as a [`ReplicationSink`]: learns the stream's total
/// at [`ReplicationSink::begin`] and reports decile completion (with
/// elapsed time and events-per-second throughput) on stderr as records
/// arrive.
#[derive(Debug)]
pub struct ProgressSink {
    label: String,
    progress: Option<Progress>,
}

impl ProgressSink {
    /// A sink reporting under `label` (e.g. the workload name).
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        ProgressSink {
            label: label.into(),
            progress: None,
        }
    }

    /// Replications counted so far (0 before the stream begins).
    #[must_use]
    pub fn done(&self) -> u64 {
        self.progress.as_ref().map_or(0, Progress::done)
    }
}

impl ReplicationSink for ProgressSink {
    fn begin(&mut self, plan: &StreamPlan) {
        self.progress = Some(Progress::new(self.label.clone(), plan.total, true));
    }

    fn record(&mut self, record: &ReplicationRecord) {
        if let Some(progress) = &self.progress {
            progress.add_events(record.events);
            progress.tick();
        }
    }

    fn failure(&mut self, _failure: &ReplicationFailure) {
        // A quarantined replication is still a completed slot of the plan's
        // total — count it, or the decile math never reaches 100%.
        if let Some(progress) = &self.progress {
            progress.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_across_threads() {
        let progress = Progress::new("test", 64, false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        progress.add_events(10);
                        progress.tick();
                    }
                });
            }
        });
        assert_eq!(progress.done(), 64);
        assert_eq!(progress.total(), 64);
        assert_eq!(progress.events(), 640);
    }

    /// For any total, the number of report lines is at most 10 — small
    /// totals used to print one line per replication because
    /// `div_ceil(total, 10)` degenerates to 1.
    #[test]
    fn at_most_ten_report_lines_for_any_total() {
        for total in 1..=250u64 {
            let lines = (1..=total)
                .filter(|&done| report_percent(done, total).is_some())
                .count();
            assert!(lines <= 10, "total {total} would print {lines} lines");
            // The completion line always prints.
            assert_eq!(report_percent(total, total), Some(100));
        }
        // Small totals report exactly once, at completion.
        for total in 1..10u64 {
            let lines: Vec<u64> = (1..=total)
                .filter(|&done| report_percent(done, total).is_some())
                .collect();
            assert_eq!(lines, vec![total], "total {total}");
        }
    }

    /// 100% appears on the final replication and never earlier, for every
    /// (done, total) pair — including steps where naive rounding lands on
    /// a multiple that integer division maps to 100.
    #[test]
    fn percent_is_monotone_and_never_100_early() {
        for total in 1..=250u64 {
            let mut last = 0;
            for done in 1..=total {
                if let Some(percent) = report_percent(done, total) {
                    assert!(percent >= last, "percent regressed at {done}/{total}");
                    if done < total {
                        assert!(percent < 100, "{done}/{total} reported {percent}%");
                    } else {
                        assert_eq!(percent, 100);
                    }
                    last = percent;
                }
            }
        }
    }
}
