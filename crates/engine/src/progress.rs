//! Thread-safe progress reporting for long batches.
//!
//! [`Progress`] is the raw counter; [`ProgressSink`] wraps it as a
//! [`ReplicationSink`] so progress reporting plugs into
//! [`crate::Session::stream`] like any other observer. A session with
//! [`crate::EngineConfig::progress`] set attaches one automatically.

use crate::session::{ReplicationRecord, ReplicationSink, StreamPlan};
use std::sync::atomic::{AtomicU64, Ordering};

/// A completed-replication counter shared by the batch workers. Reports to
/// stderr at (roughly) decile boundaries when enabled; a disabled counter
/// still counts, so callers can read totals either way.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    enabled: bool,
}

impl Progress {
    /// A counter expecting `total` completions.
    #[must_use]
    pub fn new(label: impl Into<String>, total: u64, enabled: bool) -> Self {
        Progress {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            enabled,
        }
    }

    /// Records one completion (called from worker threads).
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled || self.total == 0 {
            return;
        }
        // Report when `done` crosses a decile of the total (cheap integer
        // check, no time source needed).
        let decile = self.total.div_ceil(10);
        if done == self.total || done.is_multiple_of(decile) {
            eprintln!(
                "[{}] {done}/{} replications ({}%)",
                self.label,
                self.total,
                100 * done / self.total
            );
        }
    }

    /// Completions recorded so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Expected total completions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The progress counter as a [`ReplicationSink`]: learns the stream's total
/// at [`ReplicationSink::begin`] and reports decile completion on stderr as
/// records arrive.
#[derive(Debug)]
pub struct ProgressSink {
    label: String,
    progress: Option<Progress>,
}

impl ProgressSink {
    /// A sink reporting under `label` (e.g. the workload name).
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        ProgressSink {
            label: label.into(),
            progress: None,
        }
    }

    /// Replications counted so far (0 before the stream begins).
    #[must_use]
    pub fn done(&self) -> u64 {
        self.progress.as_ref().map_or(0, Progress::done)
    }
}

impl ReplicationSink for ProgressSink {
    fn begin(&mut self, plan: &StreamPlan) {
        self.progress = Some(Progress::new(self.label.clone(), plan.total, true));
    }

    fn record(&mut self, _record: &ReplicationRecord) {
        if let Some(progress) = &self.progress {
            progress.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_across_threads() {
        let progress = Progress::new("test", 64, false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        progress.tick();
                    }
                });
            }
        });
        assert_eq!(progress.done(), 64);
        assert_eq!(progress.total(), 64);
    }
}
