//! Engine configuration: replication budget, horizon, seeding, parallelism.

use serde::{Deserialize, Serialize};

/// What the engine does when a replication fails (panics, or trips an
/// internal invariant that validation should have made impossible).
///
/// Failure handling happens *per replication* inside the worker that runs
/// it, before the result enters the in-order delivery frontier — so under
/// every policy the records a sink does receive stay bit-identical to a
/// fault-free run at any [`EngineConfig::jobs`] value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Let the panic propagate and abort the whole session — the engine's
    /// historical behaviour, and still the default.
    #[default]
    FailFast,
    /// Catch the panic and deliver a typed
    /// [`crate::ReplicationFailure`] in stream order instead of aborting;
    /// the surviving replications are unaffected. If more than
    /// `max_failures` replications fail, the session aborts anyway (the
    /// budget caps how much of a batch may silently go missing).
    Quarantine {
        /// Maximum tolerated failures before the session aborts
        /// (`u32::MAX` = never abort).
        max_failures: u32,
    },
    /// Re-run a failed replication on the same derived random stream up to
    /// `attempts` total attempts, sleeping `backoff_ms × attempt` between
    /// tries (0 = no sleep). A retry that succeeds is bit-identical to a
    /// replication that never failed — the stream key, not the attempt,
    /// seeds the RNG. A replication still failing after the last attempt
    /// is quarantined (delivered as a failure record, without a budget).
    Retry {
        /// Total attempts per replication (clamped to at least 1).
        attempts: u32,
        /// Linear backoff step between attempts, in milliseconds.
        backoff_ms: u64,
    },
}

/// Configuration of a Monte-Carlo batch run.
///
/// The worker count ([`EngineConfig::jobs`]) affects scheduling only; for a
/// fixed `master_seed` every aggregate the engine reports is bit-for-bit
/// identical at any `jobs` value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Replications simulated per scenario (the Monte-Carlo sample size).
    pub replications: u32,
    /// Simulated horizon per replication.
    pub horizon: f64,
    /// Master seed; every replication derives its own independent stream
    /// from `(master_seed, scenario id, replication id)`.
    pub master_seed: u64,
    /// Worker threads (0 = one per available core).
    pub jobs: usize,
    /// Initial one-club size (0 = start from an empty system).
    pub initial_one_club: u32,
    /// Confidence level of the reported intervals (e.g. `0.95`).
    pub confidence: f64,
    /// Report batch progress on stderr.
    pub progress: bool,
    /// Collect per-replication kernel counters and wall times (agent
    /// workloads). Metering never touches the random streams, so results
    /// are bit-identical with it on or off; it only populates
    /// [`crate::ReplicationRecord::telemetry`].
    pub metrics: bool,
    /// What to do when a replication fails (see [`FailurePolicy`]).
    pub failure_policy: FailurePolicy,
    /// Shards each agent replication's peer population is split across
    /// (≤ 1 = unsharded). Sharding runs one giant swarm's shards on
    /// multiple workers inside a single replication — the turbo kernel
    /// only — trading exact cross-shard contact timing for a relaxed
    /// synchronization window ([`EngineConfig::sync_window`]). Results
    /// remain bit-identical at any [`EngineConfig::jobs`] for a fixed
    /// `(master_seed, shards)`; changing the shard count changes the
    /// sampled trajectory (same process, different stream splitting).
    /// A scenario-level shard setting overrides this engine-wide knob.
    pub shards: u32,
    /// Length of the sharded synchronization window in simulated time:
    /// cross-shard uploads batch into exchange rounds at window
    /// boundaries, and frozen cross-shard population weights refresh
    /// there too. Smaller windows track the unsharded process more
    /// closely at more synchronization cost. Ignored when unsharded.
    pub sync_window: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            replications: 8,
            horizon: 2_000.0,
            master_seed: 0x5EED_0CAF_E5EE_D000,
            jobs: 0,
            initial_one_club: 0,
            confidence: 0.95,
            progress: false,
            metrics: false,
            failure_policy: FailurePolicy::FailFast,
            shards: 1,
            sync_window: 0.25,
        }
    }
}

impl EngineConfig {
    /// Sets the replication count (clamped to at least 1).
    #[must_use]
    pub fn with_replications(mut self, replications: u32) -> Self {
        self.replications = replications.max(1);
        self
    }

    /// Sets the simulated horizon per replication.
    #[must_use]
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        self.horizon = horizon;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Sets the worker-thread count (0 = one per available core).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the initial one-club size.
    #[must_use]
    pub fn with_initial_one_club(mut self, peers: u32) -> Self {
        self.initial_one_club = peers;
        self
    }

    /// Sets the confidence level of reported intervals.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&confidence),
            "confidence must be in (0, 1)"
        );
        self.confidence = confidence;
        self
    }

    /// Enables or disables stderr progress reporting.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Enables or disables per-replication telemetry collection.
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the failure policy (see [`FailurePolicy`]).
    #[must_use]
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Sets the intra-replication shard count (clamped to at least 1; 1 =
    /// unsharded).
    #[must_use]
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the sharded synchronization window (simulated time between
    /// cross-shard exchange rounds).
    #[must_use]
    pub fn with_sync_window(mut self, sync_window: f64) -> Self {
        assert!(
            sync_window.is_finite() && sync_window > 0.0,
            "sync window must be positive and finite"
        );
        self.sync_window = sync_window;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let config = EngineConfig::default()
            .with_replications(0)
            .with_horizon(10.0)
            .with_master_seed(1)
            .with_jobs(3)
            .with_initial_one_club(5)
            .with_confidence(0.9)
            .with_progress(true)
            .with_metrics(true)
            .with_failure_policy(FailurePolicy::Quarantine { max_failures: 2 })
            .with_shards(0)
            .with_sync_window(0.5);
        assert_eq!(config.replications, 1, "clamped to at least one");
        assert_eq!(config.shards, 1, "shards clamp to at least one");
        assert_eq!(config.sync_window, 0.5);
        assert_eq!(config.horizon, 10.0);
        assert_eq!(config.master_seed, 1);
        assert_eq!(config.jobs, 3);
        assert_eq!(config.initial_one_club, 5);
        assert_eq!(config.confidence, 0.9);
        assert!(config.progress);
        assert!(config.metrics);
        assert_eq!(
            config.failure_policy,
            FailurePolicy::Quarantine { max_failures: 2 }
        );
    }

    #[test]
    fn failure_policy_defaults_to_fail_fast() {
        assert_eq!(
            EngineConfig::default().failure_policy,
            FailurePolicy::FailFast
        );
        assert_eq!(FailurePolicy::default(), FailurePolicy::FailFast);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn confidence_must_be_a_probability() {
        let _ = EngineConfig::default().with_confidence(1.0);
    }
}
