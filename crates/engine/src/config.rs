//! Engine configuration: replication budget, horizon, seeding, parallelism.

use serde::{Deserialize, Serialize};

/// Configuration of a Monte-Carlo batch run.
///
/// The worker count ([`EngineConfig::jobs`]) affects scheduling only; for a
/// fixed `master_seed` every aggregate the engine reports is bit-for-bit
/// identical at any `jobs` value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Replications simulated per scenario (the Monte-Carlo sample size).
    pub replications: u32,
    /// Simulated horizon per replication.
    pub horizon: f64,
    /// Master seed; every replication derives its own independent stream
    /// from `(master_seed, scenario id, replication id)`.
    pub master_seed: u64,
    /// Worker threads (0 = one per available core).
    pub jobs: usize,
    /// Initial one-club size (0 = start from an empty system).
    pub initial_one_club: u32,
    /// Confidence level of the reported intervals (e.g. `0.95`).
    pub confidence: f64,
    /// Report batch progress on stderr.
    pub progress: bool,
    /// Collect per-replication kernel counters and wall times (agent
    /// workloads). Metering never touches the random streams, so results
    /// are bit-identical with it on or off; it only populates
    /// [`crate::ReplicationRecord::telemetry`].
    pub metrics: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            replications: 8,
            horizon: 2_000.0,
            master_seed: 0x5EED_0CAF_E5EE_D000,
            jobs: 0,
            initial_one_club: 0,
            confidence: 0.95,
            progress: false,
            metrics: false,
        }
    }
}

impl EngineConfig {
    /// Sets the replication count (clamped to at least 1).
    #[must_use]
    pub fn with_replications(mut self, replications: u32) -> Self {
        self.replications = replications.max(1);
        self
    }

    /// Sets the simulated horizon per replication.
    #[must_use]
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        self.horizon = horizon;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Sets the worker-thread count (0 = one per available core).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the initial one-club size.
    #[must_use]
    pub fn with_initial_one_club(mut self, peers: u32) -> Self {
        self.initial_one_club = peers;
        self
    }

    /// Sets the confidence level of reported intervals.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&confidence),
            "confidence must be in (0, 1)"
        );
        self.confidence = confidence;
        self
    }

    /// Enables or disables stderr progress reporting.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Enables or disables per-replication telemetry collection.
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let config = EngineConfig::default()
            .with_replications(0)
            .with_horizon(10.0)
            .with_master_seed(1)
            .with_jobs(3)
            .with_initial_one_club(5)
            .with_confidence(0.9)
            .with_progress(true)
            .with_metrics(true);
        assert_eq!(config.replications, 1, "clamped to at least one");
        assert_eq!(config.horizon, 10.0);
        assert_eq!(config.master_seed, 1);
        assert_eq!(config.jobs, 3);
        assert_eq!(config.initial_one_club, 5);
        assert_eq!(config.confidence, 0.9);
        assert!(config.progress);
        assert!(config.metrics);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn confidence_must_be_a_probability() {
        let _ = EngineConfig::default().with_confidence(1.0);
    }
}
