//! The CTMC replication path: scenario and outcome types plus the
//! per-replication unit of work. Batches of these run through
//! [`crate::Session`] (via [`crate::Workload::ctmc`]), which aggregates
//! them into majority-vote verdicts with streaming statistics.

use crate::config::EngineConfig;
use crate::rng::replication_rng;
use crate::stats::Estimate;
use markov::{PathClass, PathClassifier};
use serde::{Deserialize, Serialize};
use swarm::{StabilityVerdict, SwarmModel, SwarmParams};

/// One parameter point to replicate.
///
/// The `id` keys the scenario's random streams (see [`crate::rng`]); ids
/// must be unique within a batch, and keeping an id stable across runs
/// keeps the scenario's draws stable even if the batch around it changes.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stream key of the scenario, unique within a batch.
    pub id: u64,
    /// Label carried into outcomes and artifacts.
    pub label: String,
    /// Model parameters of the point.
    pub params: SwarmParams,
}

impl Scenario {
    /// Creates a labelled scenario.
    #[must_use]
    pub fn new(id: u64, label: impl Into<String>, params: SwarmParams) -> Self {
        Scenario {
            id,
            label: label.into(),
            params,
        }
    }
}

/// The result of one replication of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationOutcome {
    /// Replication index within the scenario.
    pub replication: u32,
    /// Classification of the simulated peer-count path.
    pub class: PathClass,
    /// Tail growth rate of the peer count (peers per unit time).
    pub tail_slope: f64,
    /// Time-average of the peer count over the tail window.
    pub tail_average: f64,
}

/// Vote counts over a scenario's replications.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassVotes {
    /// Replications classified as stable.
    pub stable: u32,
    /// Replications classified as growing.
    pub growing: u32,
    /// Replications with no decisive classification.
    pub indeterminate: u32,
}

impl ClassVotes {
    /// Records one replication's class.
    pub fn push(&mut self, class: PathClass) {
        match class {
            PathClass::Stable => self.stable += 1,
            PathClass::Growing => self.growing += 1,
            PathClass::Indeterminate => self.indeterminate += 1,
        }
    }

    /// Total votes recorded.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.stable + self.growing + self.indeterminate
    }

    /// The majority-vote class; a stable/growing tie (or an indeterminate
    /// plurality) is reported as [`PathClass::Indeterminate`].
    #[must_use]
    pub fn majority(&self) -> PathClass {
        if self.stable > self.growing && self.stable >= self.indeterminate {
            PathClass::Stable
        } else if self.growing > self.stable && self.growing >= self.indeterminate {
            PathClass::Growing
        } else {
            PathClass::Indeterminate
        }
    }

    /// Fraction of votes matching `class` (1.0 for an empty tally).
    #[must_use]
    pub fn fraction(&self, class: PathClass) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let hits = match class {
            PathClass::Stable => self.stable,
            PathClass::Growing => self.growing,
            PathClass::Indeterminate => self.indeterminate,
        };
        f64::from(hits) / f64::from(total)
    }
}

/// Aggregated outcome of one scenario's replication batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario's stream key.
    pub scenario_id: u64,
    /// The scenario's label.
    pub label: String,
    /// Theorem 1's verdict for the parameter point.
    pub theory: StabilityVerdict,
    /// Per-class vote counts.
    pub votes: ClassVotes,
    /// Majority-vote classification.
    pub majority: PathClass,
    /// Tail growth rate across replications, with confidence interval.
    pub tail_slope: Estimate,
    /// Tail-average peer count across replications, with confidence
    /// interval.
    pub tail_average: Estimate,
    /// Fraction of replications whose class agrees with theory
    /// (borderline points count every replication as agreeing).
    pub agreement: f64,
    /// Whether the majority vote agrees with theory (borderline → true).
    pub agrees: bool,
    /// Replications quarantined by the failure policy: they contribute no
    /// vote and no sample, so `votes.total()` can fall short of the
    /// configured replication count by exactly this amount.
    pub failed_replications: u32,
}

/// Whether a simulated classification is consistent with Theorem 1's
/// verdict. Borderline points (left open by the theorem) are counted as
/// agreeing with any simulated behaviour.
#[must_use]
pub fn verdict_agrees(theory: StabilityVerdict, simulated: PathClass) -> bool {
    match theory {
        StabilityVerdict::PositiveRecurrent => simulated == PathClass::Stable,
        StabilityVerdict::Transient => simulated == PathClass::Growing,
        StabilityVerdict::Borderline => true,
    }
}

/// Runs a single replication of `scenario` on its derived random stream.
///
/// This is the engine's unit of work: exposed so tests and callers can
/// reproduce any replication of any batch in isolation. Batch callers
/// should build the [`SwarmModel`] once per scenario and use
/// [`run_replication_on`]; this convenience wrapper rebuilds it.
#[must_use]
pub fn run_replication(
    scenario: &Scenario,
    config: &EngineConfig,
    replication: u32,
) -> ReplicationOutcome {
    run_replication_on(
        &SwarmModel::new(scenario.params.clone()),
        scenario,
        config,
        replication,
    )
}

/// Runs a single replication against an already-constructed model
/// (avoiding the per-replication `2^K` type-space rebuild on the batch
/// hot path). `model` must be built from `scenario.params`.
#[must_use]
pub fn run_replication_on(
    model: &SwarmModel,
    scenario: &Scenario,
    config: &EngineConfig,
    replication: u32,
) -> ReplicationOutcome {
    let mut rng = replication_rng(config.master_seed, scenario.id, u64::from(replication));
    let initial = if config.initial_one_club > 0 {
        model.one_club_state(pieceset::PieceId::new(0), config.initial_one_club)
    } else {
        model.empty_state()
    };
    let initial_n = initial.total_peers() as f64;
    let path = model.simulate_peer_count(initial, config.horizon, &mut rng);
    let classifier = PathClassifier::new(
        scenario.params.total_arrival_rate(),
        (3.0 * initial_n).max(30.0),
    );
    let verdict = classifier.classify(&path);
    ReplicationOutcome {
        replication,
        class: verdict.class,
        tail_slope: verdict.tail_slope,
        tail_average: verdict.tail_average,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, Workload};

    /// The Session-backed equivalent of the old `run_batch` free function,
    /// kept as a local helper so these unit tests read the same.
    fn run_batch(scenarios: &[Scenario], config: &EngineConfig) -> Vec<ScenarioOutcome> {
        Session::builder()
            .config(*config)
            .workload(Workload::ctmc(scenarios.to_vec()))
            .build()
            .expect("valid batch")
            .run()
            .into_ctmc()
            .expect("ctmc workload")
    }

    fn example1(lambda0: f64) -> SwarmParams {
        SwarmParams::builder(1)
            .seed_rate(1.0)
            .contact_rate(1.0)
            .seed_departure_rate(2.0)
            .fresh_arrivals(lambda0)
            .build()
            .expect("valid parameters")
    }

    fn quick_config() -> EngineConfig {
        EngineConfig::default()
            .with_replications(4)
            .with_horizon(250.0)
            .with_master_seed(0xBEEF)
            .with_jobs(2)
    }

    #[test]
    fn majority_vote_rules() {
        let mut votes = ClassVotes::default();
        votes.push(PathClass::Stable);
        votes.push(PathClass::Stable);
        votes.push(PathClass::Growing);
        assert_eq!(votes.majority(), PathClass::Stable);
        votes.push(PathClass::Growing);
        assert_eq!(
            votes.majority(),
            PathClass::Indeterminate,
            "tie is indeterminate"
        );
        assert_eq!(votes.total(), 4);
        assert!((votes.fraction(PathClass::Stable) - 0.5).abs() < 1e-12);
        assert_eq!(ClassVotes::default().majority(), PathClass::Indeterminate);
    }

    #[test]
    fn single_replication_is_reproducible() {
        let scenario = Scenario::new(3, "point", example1(1.0));
        let config = quick_config();
        let a = run_replication(&scenario, &config, 2);
        let b = run_replication(&scenario, &config, 2);
        assert_eq!(a, b);
        let c = run_replication(&scenario, &config, 3);
        assert_ne!(
            (a.tail_slope, a.tail_average),
            (c.tail_slope, c.tail_average)
        );
    }

    #[test]
    fn batch_outcomes_keep_input_order_and_count_votes() {
        let scenarios = vec![
            Scenario::new(0, "stable", example1(0.5)),
            Scenario::new(1, "transient", example1(4.0)),
        ];
        let outcomes = run_batch(&scenarios, &quick_config());
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].label, "stable");
        assert_eq!(outcomes[1].label, "transient");
        for outcome in &outcomes {
            assert_eq!(outcome.votes.total(), 4);
            assert_eq!(outcome.tail_slope.n, 4);
        }
        assert_eq!(outcomes[0].theory, StabilityVerdict::PositiveRecurrent);
        assert_eq!(outcomes[1].theory, StabilityVerdict::Transient);
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(run_batch(&[], &quick_config()).is_empty());
    }

    #[test]
    fn duplicate_scenario_ids_are_rejected() {
        let scenarios = vec![
            Scenario::new(7, "a", example1(0.5)),
            Scenario::new(7, "b", example1(1.0)),
        ];
        let error = Session::builder()
            .config(quick_config())
            .workload(Workload::ctmc(scenarios))
            .build()
            .expect_err("duplicate ids must be rejected");
        assert_eq!(error, crate::Error::DuplicateScenarioId(7));
        assert!(error.to_string().contains("unique"), "{error}");
    }
}
