//! Theorem 15 phase-diagram grids: the `(gift fraction f, field order q,
//! file dimension K)` rectangle and diagram types. Rectangles are swept
//! through the agent-replication engine on the coded kernel with
//! [`crate::Workload::coded`] on a [`crate::Session`].
//!
//! This is the coded counterpart of [`crate::grid`]: each cell builds the
//! paper's headline gifted-arrival model
//! ([`swarm::coded::CodedParams::gift_example`]), replicates it on the
//! [`swarm::sim::KernelKind::Coded`] kernel, and records the Theorem 15
//! verdict next to the simulated majority — so the closed-form transition at
//! `f ∈ [q/((q−1)K), q²/((q−1)²K)]` shows up as a `#`→`·` flip along the
//! `f` axis. Scenario ids are linear cell indices, so results are
//! bit-identical at any worker count.

use crate::agent::AgentOutcome;
use crate::grid::Axis;
use crate::labels;
use serde::{Deserialize, Serialize};
use swarm::sim::AgentConfig;

/// A rectangle of coded parameter points: the cartesian product
/// `pieces × field_orders × gift_fractions`, at fixed base rates.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedGridSpec {
    /// Gift fractions `f` (the swept stability axis).
    pub gift_fraction: Axis,
    /// Field orders `q` swept.
    pub field_orders: Vec<u64>,
    /// File dimensions `K` swept.
    pub pieces: Vec<usize>,
    /// Total arrival rate `λ` at every cell.
    pub lambda_total: f64,
    /// Fixed-seed rate `U_s` at every cell.
    pub seed_rate: f64,
    /// Contact rate `µ` at every cell.
    pub contact_rate: f64,
    /// Peer-seed departure rate `γ` (`f64::INFINITY` = immediate departure).
    pub seed_departure_rate: f64,
    /// Simulator configuration template. `kernel` is forced to
    /// [`swarm::sim::KernelKind::Coded`] per cell, unless it explicitly
    /// names [`swarm::sim::KernelKind::CodedTurbo`] — the bitsliced GF(2)
    /// fast kernel — which is honoured (and rejects cells with `q ≠ 2` at
    /// session build).
    pub sim: AgentConfig,
}

impl CodedGridSpec {
    /// The paper's headline setting — `U_s = 0`, `µ = 1`, `γ = ∞` — over the
    /// given axes at total arrival rate `lambda_total`.
    #[must_use]
    pub fn headline(
        gift_fraction: Axis,
        field_orders: Vec<u64>,
        pieces: Vec<usize>,
        lambda_total: f64,
    ) -> Self {
        CodedGridSpec {
            gift_fraction,
            field_orders,
            pieces,
            lambda_total,
            seed_rate: 0.0,
            contact_rate: 1.0,
            seed_departure_rate: f64::INFINITY,
            sim: AgentConfig::default(),
        }
    }

    /// Number of cells in the rectangle.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pieces.len() * self.field_orders.len() * self.gift_fraction.values.len()
    }

    /// Returns `true` if any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One evaluated coded grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodedPhaseCell {
    /// File dimension `K` at the cell.
    pub pieces: usize,
    /// Field order `q` at the cell.
    pub field_order: u64,
    /// Gift fraction `f` at the cell.
    pub gift_fraction: f64,
    /// The engine outcome (Theorem 15 verdict, votes, statistics).
    pub outcome: AgentOutcome,
}

impl CodedPhaseCell {
    /// The single character used in ASCII phase diagrams, with the same
    /// legend as [`crate::grid::PhaseCell::glyph`] (the canonical
    /// [`labels::agreement_glyph`] mapping; the borderline glyph also
    /// covers the gap between the two Theorem 15 thresholds).
    #[must_use]
    pub fn glyph(&self) -> char {
        labels::agreement_glyph(self.outcome.theory, self.outcome.majority)
    }
}

/// An evaluated coded phase diagram over a [`CodedGridSpec`] rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedPhaseDiagram {
    /// The swept rectangle.
    pub spec: CodedGridSpec,
    /// Evaluated cells in `pieces`-major, then `field_orders`, then
    /// `gift_fraction` order. Cells whose parameters failed to construct are
    /// absent.
    pub cells: Vec<CodedPhaseCell>,
    /// Number of grid points whose parameters could not be constructed.
    pub skipped: usize,
}

impl CodedPhaseDiagram {
    /// Cells where the majority vote agrees with Theorem 15 (borderline
    /// cells — including the gap between the two thresholds — count as
    /// agreeing).
    #[must_use]
    pub fn agreements(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.agrees).count()
    }

    /// Cells where the majority vote contradicts a decisive Theorem 15
    /// verdict.
    #[must_use]
    pub fn mismatches(&self) -> usize {
        self.cells.iter().filter(|c| !c.outcome.agrees).count()
    }

    /// Number of evaluated cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no cells were evaluated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Looks up the cell at exact coordinates, if it was evaluated.
    #[must_use]
    pub fn cell(
        &self,
        pieces: usize,
        field_order: u64,
        gift_fraction: f64,
    ) -> Option<&CodedPhaseCell> {
        self.cells.iter().find(|c| {
            c.pieces == pieces && c.field_order == field_order && c.gift_fraction == gift_fraction
        })
    }

    /// Renders one ASCII map per `K` slice: rows are `q` (largest on top),
    /// columns are `f`, with the Theorem 15 thresholds annotated per row.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut by_linear: Vec<Option<&CodedPhaseCell>> = vec![None; self.spec.len()];
        for cell in &self.cells {
            if let Some(slot) = by_linear.get_mut(cell.outcome.scenario_id as usize) {
                *slot = Some(cell);
            }
        }
        let (n_q, n_f) = (
            self.spec.field_orders.len(),
            self.spec.gift_fraction.values.len(),
        );
        let mut out = String::new();
        out.push_str(labels::GLYPH_LEGEND);
        out.push('\n');
        for (ki, &k) in self.spec.pieces.iter().enumerate() {
            let _ = writeln!(
                out,
                "K = {k}  (rows: q, top = largest; columns: {})",
                self.spec.gift_fraction.label
            );
            for (qi, &q) in self.spec.field_orders.iter().enumerate().rev() {
                let _ = write!(out, "{q:>8} | ");
                for fi in 0..n_f {
                    let linear = (ki * n_q + qi) * n_f + fi;
                    let glyph = by_linear[linear].map_or(' ', |c| c.glyph());
                    out.push(glyph);
                    out.push(' ');
                }
                let (lo, hi) = swarm::coded::theorem15_gift_thresholds(q, k);
                let _ = writeln!(out, "  thresholds f ∈ [{lo:.4}, {hi:.4}]");
            }
            let _ = write!(out, "{:>8}   ", "");
            for &f in &self.spec.gift_fraction.values {
                let _ = write!(out, "{f:<4.2}");
            }
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for CodedPhaseDiagram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::session::{Session, Workload};
    use swarm::StabilityVerdict;

    /// The Session-backed equivalent of the old `run_coded_grid` free
    /// function, kept as a local helper so these unit tests read the same.
    fn run_coded_grid(spec: &CodedGridSpec, config: &EngineConfig) -> CodedPhaseDiagram {
        Session::builder()
            .config(*config)
            .workload(Workload::coded(spec))
            .build()
            .expect("valid coded grid")
            .run()
            .into_coded()
            .expect("coded workload")
    }

    fn quick_config() -> EngineConfig {
        EngineConfig::default()
            .with_replications(2)
            .with_horizon(200.0)
            .with_master_seed(9)
            .with_jobs(2)
    }

    #[test]
    fn coded_grid_shape_and_theory_verdicts() {
        // GF(2), K = 4: thresholds are f ∈ [0.5, 1.0]; f = 0.1 is firmly
        // transient by theory, f in the gap is borderline.
        let spec = CodedGridSpec::headline(Axis::new("f", vec![0.1, 0.75]), vec![2], vec![4], 1.0);
        assert_eq!(spec.len(), 2);
        let diagram = run_coded_grid(&spec, &quick_config());
        assert_eq!(diagram.len(), 2);
        assert_eq!(diagram.skipped, 0);
        let below = diagram.cell(4, 2, 0.1).expect("cell evaluated");
        assert_eq!(below.outcome.theory, StabilityVerdict::Transient);
        let gap = diagram.cell(4, 2, 0.75).expect("cell evaluated");
        assert_eq!(gap.outcome.theory, StabilityVerdict::Borderline);
        let rendered = diagram.render();
        assert!(
            rendered.contains("thresholds f ∈ [0.5000, 1.0000]"),
            "{rendered}"
        );
    }

    #[test]
    fn unsupported_field_orders_are_skipped() {
        let spec = CodedGridSpec::headline(Axis::fixed("f", 0.2), vec![6, 8], vec![3], 1.0);
        let diagram = run_coded_grid(&spec, &quick_config());
        assert_eq!(diagram.skipped, 1, "GF(6) does not exist");
        assert_eq!(diagram.len(), 1);
        // The surviving cell keeps its linear id.
        assert_eq!(diagram.cells[0].outcome.scenario_id, 1);
    }
}
