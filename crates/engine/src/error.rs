//! The engine's typed error hierarchy.
//!
//! Everything a [`crate::Session`] can reject is reported through [`Error`]
//! — scenario validation, stream-key collisions, unusable configurations,
//! builder misuse — so callers match on variants instead of scraping
//! strings. Nearly every failure mode is caught by
//! [`crate::SessionBuilder::build`] before a single replication runs; the
//! one runtime variant, [`Error::Invariant`], covers invariants that can
//! only be checked against a replication's *output* (e.g. a non-finite
//! metric) and is routed through the failure policy rather than returned.

use swarm::SwarmError;

/// Everything the engine can reject.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A scenario failed validation (unknown policy, invalid simulator
    /// configuration, bad flash schedule, inconsistent coding block).
    Scenario {
        /// Label of the offending scenario.
        label: String,
        /// The model-level validation failure.
        source: SwarmError,
    },
    /// Two scenarios in one workload share a stream key, so their
    /// replications would silently share random streams.
    DuplicateScenarioId(u64),
    /// [`crate::SessionBuilder::build`] was called without a workload.
    MissingWorkload,
    /// The engine configuration is unusable (non-positive horizon,
    /// confidence outside `(0, 1)`).
    InvalidConfig(String),
    /// A checkpoint file could not be read or written.
    CheckpointIo {
        /// Path of the checkpoint file.
        path: String,
        /// The underlying I/O failure, rendered.
        message: String,
    },
    /// A checkpoint file exists but fails structural validation (bad
    /// header, short file, checksum mismatch, unparseable field).
    CheckpointCorrupt {
        /// Path of the checkpoint file.
        path: String,
        /// What failed to validate.
        message: String,
    },
    /// A checkpoint is well-formed but was written by a different run:
    /// its config+workload digest does not match the resuming session's.
    CheckpointMismatch {
        /// Path of the checkpoint file.
        path: String,
        /// Digest recorded in the checkpoint.
        found: u64,
        /// Digest of the session attempting to resume.
        expected: u64,
    },
    /// A runtime invariant was violated after validation — e.g. a
    /// replication produced a non-finite metric that would silently poison
    /// the Welford aggregation. Under `FailurePolicy::FailFast` this
    /// surfaces as a panic carrying the rendered message; under quarantine
    /// it becomes a typed [`crate::ReplicationFailure`].
    Invariant(String),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Scenario { label, source } => write!(f, "scenario `{label}`: {source}"),
            Error::DuplicateScenarioId(id) => write!(
                f,
                "scenario ids must be unique within a batch (id {id} appears more than once)"
            ),
            Error::MissingWorkload => write!(f, "the session builder needs a workload"),
            Error::InvalidConfig(message) => write!(f, "invalid engine configuration: {message}"),
            Error::CheckpointIo { path, message } => {
                write!(f, "checkpoint `{path}`: {message}")
            }
            Error::CheckpointCorrupt { path, message } => {
                write!(f, "checkpoint `{path}` is corrupt: {message}")
            }
            Error::CheckpointMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint `{path}` belongs to a different run \
                 (digest {found:016x}, session expects {expected:016x})"
            ),
            Error::Invariant(message) => {
                write!(f, "internal invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Scenario { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = Error::DuplicateScenarioId(7);
        assert!(e.to_string().contains("unique"), "{e}");
        assert!(e.to_string().contains('7'), "{e}");
        let e = Error::Scenario {
            label: "bad".into(),
            source: SwarmError::InvalidParameter("unknown piece policy `telepathic`".into()),
        };
        assert!(e.to_string().contains("bad"), "{e}");
        assert!(e.to_string().contains("telepathic"), "{e}");
        assert!(Error::MissingWorkload.to_string().contains("workload"));
        let e = Error::CheckpointCorrupt {
            path: "x.ckpt".into(),
            message: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("x.ckpt"), "{e}");
        assert!(e.to_string().contains("checksum"), "{e}");
        let e = Error::CheckpointMismatch {
            path: "x.ckpt".into(),
            found: 0xdead,
            expected: 0xbeef,
        };
        assert!(e.to_string().contains("000000000000dead"), "{e}");
        assert!(e.to_string().contains("000000000000beef"), "{e}");
        let e = Error::Invariant("replication 3 produced a non-finite tail slope".into());
        assert!(e.to_string().contains("invariant"), "{e}");
        assert!(e.to_string().contains("non-finite tail slope"), "{e}");
    }

    #[test]
    fn scenario_errors_expose_their_source() {
        use std::error::Error as _;
        let e = Error::Scenario {
            label: "x".into(),
            source: SwarmError::InvalidParameter("nope".into()),
        };
        assert!(e.source().is_some());
        assert!(Error::MissingWorkload.source().is_none());
    }
}
