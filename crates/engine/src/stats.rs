//! Streaming aggregation: Welford mean/variance, min/max, and
//! normal-approximation confidence intervals.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance, plus min/max.
///
/// Values are pushed one at a time; the engine always pushes in replication
/// order (0, 1, 2, …) regardless of which worker produced each value, so
/// the aggregate is bit-for-bit independent of scheduling.
///
/// Non-finite observations (NaN, ±∞) are **rejected, not aggregated**:
/// `min`/`max` would silently ignore a NaN while mean/m2 — and every
/// confidence interval derived from them — went NaN, so verdict comparisons
/// would quietly default. [`Welford::push`] instead counts the rejected
/// observation in [`Welford::non_finite`] and leaves the moments untouched;
/// callers that must fail loudly check the counter (the session layer turns
/// a non-finite replication metric into a typed invariant error before the
/// value ever reaches an accumulator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    non_finite: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            count: 0,
            non_finite: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Pushes one observation. A non-finite value (NaN, ±∞) is rejected —
    /// counted in [`Welford::non_finite`] and excluded from every moment —
    /// instead of poisoning mean/m2 while `f64::min`/`max` silently skip it.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of rejected non-finite observations (NaN, ±∞). These were
    /// counted but never aggregated; a nonzero value means some producer
    /// emitted a poisoned metric.
    #[must_use]
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (Chan's parallel update). The engine's
    /// hot path aggregates sequentially in replication order; `merge` is
    /// for callers combining already-aggregated batches.
    ///
    /// # Merge order is part of the contract
    ///
    /// Chan's update is **not** bit-identical to pushing the same values in
    /// order, and it is not associative-in-bits either: `a.merge(b)` and
    /// `b.merge(a)` generally differ in the last ulps of mean/m2 (both are
    /// correct to floating-point accuracy; neither reproduces in-order
    /// `push` exactly). Deterministic callers must therefore fix a canonical
    /// merge order — the sharded simulator merges shard-local accumulators
    /// in ascending shard index — while the engine's artifact aggregation
    /// never merges at all: it stays on the in-order `push` path, which is
    /// what keeps artifacts byte-identical at any `--jobs`. The
    /// `merge_is_order_sensitive_but_push_path_is_canonical` regression test
    /// pins both halves of this contract.
    pub fn merge(&mut self, other: &Welford) {
        self.non_finite += other.non_finite;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let non_finite = self.non_finite;
            *self = *other;
            self.non_finite = non_finite;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Decomposes the accumulator into `(count, non_finite, mean, m2, min,
    /// max)` for bit-exact external serialization (checkpoint files
    /// round-trip the floats through [`f64::to_bits`]). Inverse of
    /// [`Welford::from_raw_parts`].
    #[must_use]
    pub fn to_raw_parts(&self) -> (u64, u64, f64, f64, f64, f64) {
        (
            self.count,
            self.non_finite,
            self.mean,
            self.m2,
            self.min,
            self.max,
        )
    }

    /// Rebuilds an accumulator from parts produced by
    /// [`Welford::to_raw_parts`]. The parts are trusted verbatim — this is
    /// a deserialization hook, not a constructor for hand-made state.
    #[must_use]
    pub fn from_raw_parts(
        count: u64,
        non_finite: u64,
        mean: f64,
        m2: f64,
        min: f64,
        max: f64,
    ) -> Self {
        Welford {
            count,
            non_finite,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Snapshot with a normal-approximation confidence interval at the
    /// given confidence level.
    #[must_use]
    pub fn estimate(&self, confidence: f64) -> Estimate {
        let half_width = if self.count < 2 {
            f64::NAN
        } else {
            normal_quantile(0.5 + confidence / 2.0) * self.std_dev() / (self.count as f64).sqrt()
        };
        Estimate {
            n: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
            confidence,
            ci_half_width: half_width,
        }
    }
}

/// A point estimate with its spread and confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Sample size.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Confidence level of the interval.
    pub confidence: f64,
    /// Half-width of the normal-approximation interval
    /// `mean ± z_{(1+conf)/2} · s/√n` (NaN below two observations).
    pub ci_half_width: f64,
}

impl Estimate {
    /// Lower edge of the confidence interval.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.ci_half_width
    }

    /// Upper edge of the confidence interval.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.ci_half_width
    }
}

/// Standard-normal quantile (inverse CDF) via Acklam's rational
/// approximation — absolute error below `1.2e-9`, far tighter than any
/// Monte-Carlo interval reported here.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_match_direct_computation() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for v in values {
            w.push(v);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic data set is 32/7.
        assert!(
            (w.variance() - 32.0 / 7.0).abs() < 1e-12,
            "{}",
            w.variance()
        );
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn merge_agrees_with_sequential_push() {
        let mut all = Welford::new();
        let mut left = Welford::new();
        let mut right = Welford::new();
        for i in 0..100 {
            let v = (i as f64).sin() * 10.0;
            all.push(v);
            if i < 37 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn normal_quantile_hits_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn estimate_interval_shrinks_with_n() {
        let mut small = Welford::new();
        let mut large = Welford::new();
        // Same spread, different n: half-width scales like 1/√n.
        for i in 0..16 {
            small.push(f64::from(i % 4));
        }
        for i in 0..1024 {
            large.push(f64::from(i % 4));
        }
        let s = small.estimate(0.95);
        let l = large.estimate(0.95);
        assert!(
            l.ci_half_width < s.ci_half_width / 6.0,
            "{} vs {}",
            l.ci_half_width,
            s.ci_half_width
        );
        assert!(s.lo() < s.mean && s.mean < s.hi());
    }

    #[test]
    fn raw_parts_round_trip_bit_exactly() {
        let mut w = Welford::new();
        for i in 0..17 {
            w.push((i as f64).cos() * 3.0);
        }
        w.push(f64::NAN);
        let (count, non_finite, mean, m2, min, max) = w.to_raw_parts();
        let back = Welford::from_raw_parts(count, non_finite, mean, m2, min, max);
        assert_eq!(back, w);
        assert_eq!(back.non_finite(), 1);
        assert_eq!(back.mean().to_bits(), w.mean().to_bits());
        assert_eq!(back.variance().to_bits(), w.variance().to_bits());
    }

    #[test]
    fn non_finite_observations_are_counted_not_aggregated() {
        let mut w = Welford::new();
        w.push(2.0);
        w.push(f64::NAN);
        w.push(4.0);
        w.push(f64::INFINITY);
        w.push(f64::NEG_INFINITY);
        assert_eq!(w.count(), 2);
        assert_eq!(w.non_finite(), 3);
        // The moments are those of the finite observations alone.
        assert!((w.mean() - 3.0).abs() < 1e-12);
        assert!(w.variance().is_finite());
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 4.0);
        assert!(w.estimate(0.95).mean.is_finite());
        // Merging carries the rejection count along, in both directions.
        let mut other = Welford::new();
        other.push(f64::NAN);
        other.push(6.0);
        w.merge(&other);
        assert_eq!(w.count(), 3);
        assert_eq!(w.non_finite(), 4);
        let mut empty = Welford::new();
        empty.push(f64::NAN);
        empty.merge(&w);
        assert_eq!(empty.non_finite(), 5);
        assert_eq!(empty.count(), 3);
    }

    /// Pins the merge-order contract documented on [`Welford::merge`]:
    /// Chan's update is order-sensitive in the last bits, so (a) a fixed
    /// canonical merge order is deterministic and statistically equal to
    /// the in-order push path, and (b) nothing may assume `merge` commutes
    /// bit-for-bit — the engine's artifact aggregation therefore stays on
    /// in-order `push`, and shard merges fix ascending shard order.
    #[test]
    fn merge_is_order_sensitive_but_push_path_is_canonical() {
        // Three shard-like batches with deliberately mismatched scales so
        // the floating-point non-associativity is actually visible.
        let batches: [Vec<f64>; 3] = [
            (0..31).map(|i| (i as f64).sin() * 1e8).collect(),
            (0..17).map(|i| (i as f64).cos() * 1e-3).collect(),
            (0..53).map(|i| ((i * i) as f64).sin() * 42.0).collect(),
        ];
        let mut in_order = Welford::new();
        let mut parts: Vec<Welford> = Vec::new();
        for batch in &batches {
            let mut w = Welford::new();
            for &v in batch {
                in_order.push(v);
                w.push(v);
            }
            parts.push(w);
        }
        // Canonical order: ascending shard index. Deterministic — merging
        // the same parts in the same order twice is bit-identical.
        let canonical = |order: &[usize]| {
            let mut acc = Welford::new();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let forward = canonical(&[0, 1, 2]);
        let again = canonical(&[0, 1, 2]);
        assert_eq!(forward.mean().to_bits(), again.mean().to_bits());
        assert_eq!(forward.variance().to_bits(), again.variance().to_bits());
        // Order dependence: some permutation disagrees in the last bits
        // with the canonical order (if merge were bit-commutative this
        // regression test would fail and the docs would be wrong).
        let permutations: [[usize; 3]; 5] = [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let some_order_differs = permutations.iter().any(|order| {
            let w = canonical(order);
            w.mean().to_bits() != forward.mean().to_bits()
                || w.variance().to_bits() != forward.variance().to_bits()
        });
        let push_path_differs = forward.mean().to_bits() != in_order.mean().to_bits()
            || forward.variance().to_bits() != in_order.variance().to_bits();
        assert!(
            some_order_differs || push_path_differs,
            "Chan merge unexpectedly bit-identical across orders and to in-order push"
        );
        // Statistically they all agree to floating-point accuracy.
        for order in &permutations {
            let w = canonical(order);
            assert_eq!(w.count(), in_order.count());
            assert!((w.mean() - in_order.mean()).abs() <= 1e-6 * in_order.mean().abs() + 1e-9);
            assert!(
                (w.variance() - in_order.variance()).abs()
                    <= 1e-6 * in_order.variance().abs() + 1e-9
            );
        }
    }

    #[test]
    fn degenerate_estimates_are_flagged() {
        let mut w = Welford::new();
        w.push(1.0);
        assert!(w.estimate(0.95).ci_half_width.is_nan());
        assert_eq!(w.variance(), 0.0);
    }
}
