//! Telemetry export: per-replication kernel counters and wall times as
//! NDJSON, plus a human summary.
//!
//! [`ReplicationTelemetry`] is the per-replication payload the session
//! attaches to [`crate::ReplicationRecord`] when
//! [`crate::EngineConfig::metrics`] is set. [`MetricsSink`] is the export
//! path: it wraps any [`ReplicationSink`] and writes one NDJSON line per
//! stream event — `begin`, one per replication, `end` — to a caller-supplied
//! writer, forwarding everything to the inner sink untouched.
//!
//! Metering is observational by construction: kernels count through a
//! [`telemetry::Recorder`] that consumes no randomness, so a stream produces
//! bit-identical records and aggregates with metrics on or off (the only
//! difference is that `record.telemetry` is populated). Timing values are
//! wall-clock and therefore *not* deterministic — they live only in the
//! telemetry side channel, never in artifacts.
//!
//! # NDJSON schema
//!
//! ```text
//! {"type":"begin","scenarios":2,"replications":4,"total":8}
//! {"type":"replication","scenario_index":0,"scenario_id":0,"replication":0,
//!  "class":"stable","events":812,"transfers":391,"truncated":false,
//!  "wall_seconds":0.0021,"counters":{"arrivals":117,...}}
//! {"type":"end","delivered":8,"workers":4,"wall_seconds":0.05,
//!  "max_pending":3,"reorder_window":64,"per_worker":[3,2,2,1],
//!  "totals":{"arrivals":903,...},
//!  "task_nanos":{...},"queue_wait_nanos":{...},"reorder_occupancy":{...}}
//! ```
//!
//! `counters`/`wall_seconds` appear on replication lines only when the
//! record carried telemetry (agent workloads with metrics enabled); CTMC
//! replications emit the line without them. Histogram objects carry
//! `count`, `sum`, `max`, and the sparse `buckets` array of
//! `[bucket_index, count]` pairs (see [`telemetry::Histogram`]).
//!
//! Quarantined replications add `failure` lines between `begin` and `end`,
//! and the `end` frame carries `failed`/`retries` totals:
//!
//! ```text
//! {"type":"failure","scenario_index":0,"scenario_id":0,"replication":3,
//!  "attempts":1,"payload":"injected fault: ..."}
//! ```
//!
//! # Crash consistency
//!
//! Every line is flushed as it is written, so a killed process leaves a
//! prefix of complete lines, never a torn one. If the sink is dropped
//! before the stream's `end` frame arrives (panic unwind, abort, early
//! exit), it writes a final `{"type":"end","truncated":true,...}` frame so
//! the file is still well-formed and self-describing; `workload`'s NDJSON
//! validator accepts such files in `--allow-truncated` mode.

use crate::artifact::json_escape;
use crate::labels::class_name;
use crate::session::{
    ReplicationFailure, ReplicationRecord, ReplicationSink, StreamPlan, StreamStats,
};
use std::io::Write;
use telemetry::{Counter, CounterSet, Histogram};

/// Per-replication telemetry: what one metered simulator run counted and
/// how long it took.
///
/// Counters are deterministic (they follow the simulated trajectory);
/// `wall_seconds` is wall-clock and varies run to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationTelemetry {
    /// Kernel counters accumulated over the replication.
    pub counters: CounterSet,
    /// Wall-clock duration of the simulator run, in seconds.
    pub wall_seconds: f64,
}

/// A [`ReplicationSink`] adapter that exports the stream as NDJSON while
/// forwarding every call to the wrapped sink.
///
/// The writer receives one line per stream event (begin, one per
/// replication or failure, end), each flushed as it is written so a killed
/// process leaves whole lines behind. On `end` it also prints a
/// human-readable summary to stderr unless silenced with
/// [`MetricsSink::quiet`] — stdout and the forwarded stream stay
/// byte-identical to an unwrapped run. Dropping the sink without an `end`
/// frame (abort, unwind) writes a `{"type":"end","truncated":true,...}`
/// closer first.
#[derive(Debug)]
pub struct MetricsSink<S: ReplicationSink, W: Write + Send> {
    /// Present until [`MetricsSink::into_parts`] disassembles the sink
    /// (Drop needs somewhere to leave the pieces).
    inner: Option<S>,
    out: Option<W>,
    summary: bool,
    totals: CounterSet,
    /// Per-replication simulator wall times, in nanoseconds.
    wall: Histogram,
    /// Replications that carried telemetry.
    metered: u64,
    /// Records forwarded so far (reported by the truncated closer).
    delivered: u64,
    /// Failure lines written so far (reported by the truncated closer).
    failed: u64,
    /// Set once the stream's own `end` frame has been written; the Drop
    /// closer only fires while this is false.
    ended: bool,
}

impl<S: ReplicationSink, W: Write + Send> MetricsSink<S, W> {
    /// Wraps `inner`, exporting NDJSON telemetry to `out`.
    #[must_use]
    pub fn new(inner: S, out: W) -> Self {
        MetricsSink {
            inner: Some(inner),
            out: Some(out),
            summary: true,
            totals: CounterSet::new(),
            wall: Histogram::new(),
            metered: 0,
            delivered: 0,
            failed: 0,
            ended: false,
        }
    }

    /// Disables the end-of-run human summary on stderr.
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.summary = false;
        self
    }

    /// Counter totals accumulated across every metered replication so far.
    #[must_use]
    pub fn totals(&self) -> &CounterSet {
        &self.totals
    }

    /// Unwraps the adapter, returning the inner sink and the writer.
    ///
    /// Disassembling skips the Drop closer: the caller now owns the writer
    /// and decides what (if anything) still gets written.
    pub fn into_parts(mut self) -> (S, W) {
        self.ended = true;
        // simlint: allow(E001, "the Options exist only so Drop can tell whether into_parts already ran; into_parts consumes self")
        let inner = self.inner.take().expect("parts taken only once");
        // simlint: allow(E001, "the Options exist only so Drop can tell whether into_parts already ran; into_parts consumes self")
        let out = self.out.take().expect("parts taken only once");
        (inner, out)
    }

    fn emit(&mut self, line: &str) {
        // Telemetry must never abort the run it observes: a full disk or a
        // closed pipe degrades to missing metrics, not a failed stream.
        // Flushing per line is what makes the export crash-consistent —
        // a SIGKILL can lose at most the line being formed, never tear one.
        if let Some(out) = &mut self.out {
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }

    fn print_summary(&self, stats: &StreamStats) {
        let mut lines = String::new();
        lines.push_str(&format!(
            "[metrics] {} replications on {} worker(s) in {:.3}s (reorder peak {}/{})\n",
            stats.delivered,
            stats.workers,
            stats.wall_seconds,
            stats.max_pending,
            stats.reorder_window
        ));
        if self.metered > 0 {
            lines.push_str(&format!(
                "[metrics] simulator wall: mean {:.6}s, max {:.6}s over {} metered replication(s)\n",
                self.wall.mean() / 1e9,
                self.wall.max() as f64 / 1e9,
                self.metered
            ));
            for (counter, value) in self.totals.iter() {
                if value > 0 {
                    lines.push_str(&format!("[metrics]   {:<24} {value}\n", counter.name()));
                }
            }
        }
        if stats.task_nanos.count() > 0 {
            lines.push_str(&format!(
                "[metrics] task time: mean {:.6}s, max {:.6}s; queue waits: {}; \
                 reorder occupancy mean {:.2}\n",
                stats.task_nanos.mean() / 1e9,
                stats.task_nanos.max() as f64 / 1e9,
                stats.queue_wait_nanos.count(),
                stats.reorder_occupancy.mean()
            ));
        }
        eprint!("{lines}");
    }
}

impl<S: ReplicationSink, W: Write + Send> ReplicationSink for MetricsSink<S, W> {
    fn begin(&mut self, plan: &StreamPlan) {
        let line = format!(
            "{{\"type\":\"begin\",\"scenarios\":{},\"replications\":{},\"total\":{}}}",
            plan.scenarios, plan.replications, plan.total
        );
        self.emit(&line);
        if let Some(inner) = &mut self.inner {
            inner.begin(plan);
        }
    }

    fn record(&mut self, record: &ReplicationRecord) {
        let mut line = format!(
            "{{\"type\":\"replication\",\"scenario_index\":{},\"scenario_id\":{},\
             \"replication\":{},\"class\":\"{}\",\"events\":{},\"transfers\":{},\
             \"truncated\":{}",
            record.scenario_index,
            record.scenario_id,
            record.replication,
            class_name(record.class),
            record.events,
            record.transfers,
            record.truncated
        );
        if let Some(telemetry) = &record.telemetry {
            self.totals.merge(&telemetry.counters);
            self.wall
                .record((telemetry.wall_seconds * 1e9).max(0.0) as u64);
            self.metered += 1;
            line.push_str(&format!(",\"wall_seconds\":{}", telemetry.wall_seconds));
            line.push_str(",\"counters\":");
            line.push_str(&counters_json(&telemetry.counters));
        }
        line.push('}');
        self.delivered += 1;
        self.emit(&line);
        if let Some(inner) = &mut self.inner {
            inner.record(record);
        }
    }

    fn failure(&mut self, failure: &ReplicationFailure) {
        let line = format!(
            "{{\"type\":\"failure\",\"scenario_index\":{},\"scenario_id\":{},\
             \"replication\":{},\"attempts\":{},\"payload\":\"{}\"}}",
            failure.scenario_index,
            failure.scenario_id,
            failure.replication,
            failure.attempts,
            json_escape(&failure.payload)
        );
        self.failed += 1;
        self.emit(&line);
        if let Some(inner) = &mut self.inner {
            inner.failure(failure);
        }
    }

    fn end(&mut self, stats: &StreamStats) {
        let mut line = format!(
            "{{\"type\":\"end\",\"delivered\":{},\"failed\":{},\"retries\":{},\
             \"workers\":{},\"wall_seconds\":{},\
             \"max_pending\":{},\"reorder_window\":{}",
            stats.delivered,
            stats.failed,
            stats.retries,
            stats.workers,
            stats.wall_seconds,
            stats.max_pending,
            stats.reorder_window
        );
        line.push_str(",\"per_worker\":[");
        for (i, n) in stats.per_worker.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&n.to_string());
        }
        line.push(']');
        line.push_str(",\"totals\":");
        line.push_str(&counters_json(&self.totals));
        line.push_str(",\"task_nanos\":");
        line.push_str(&histogram_json(&stats.task_nanos));
        line.push_str(",\"queue_wait_nanos\":");
        line.push_str(&histogram_json(&stats.queue_wait_nanos));
        line.push_str(",\"reorder_occupancy\":");
        line.push_str(&histogram_json(&stats.reorder_occupancy));
        line.push('}');
        self.emit(&line);
        self.ended = true;
        if self.summary {
            self.print_summary(stats);
        }
        if let Some(inner) = &mut self.inner {
            inner.end(stats);
        }
    }
}

impl<S: ReplicationSink, W: Write + Send> Drop for MetricsSink<S, W> {
    fn drop(&mut self) {
        if self.ended {
            return;
        }
        // The stream died before its end frame (panic unwind, quarantine
        // budget abort, early exit). Close the file with a well-formed,
        // self-describing frame so downstream tooling can still parse it.
        let line = format!(
            "{{\"type\":\"end\",\"truncated\":true,\"delivered\":{},\"failed\":{}}}",
            self.delivered, self.failed
        );
        self.emit(&line);
    }
}

/// Renders a counter set as a JSON object keyed by [`Counter::name`].
#[must_use]
pub fn counters_json(counters: &CounterSet) -> String {
    let mut out = String::from("{");
    for (i, counter) in Counter::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{}",
            counter.name(),
            counters.get(*counter)
        ));
    }
    out.push('}');
    out
}

/// Renders a histogram as a JSON object with `count`, `sum`, `max`, and the
/// sparse `buckets` array of `[bucket_index, count]` pairs.
#[must_use]
pub fn histogram_json(histogram: &Histogram) -> String {
    let mut out = format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
        histogram.count(),
        histogram.sum(),
        histogram.max()
    );
    for (i, (bucket, count)) in histogram.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{bucket},{count}]"));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::NullSink;
    use markov::PathClass;

    fn record(telemetry: Option<ReplicationTelemetry>) -> ReplicationRecord {
        ReplicationRecord {
            scenario_index: 0,
            scenario_id: 7,
            replication: 0,
            class: PathClass::Stable,
            tail_slope: 0.0,
            tail_average: 1.0,
            events: 10,
            transfers: 4,
            truncated: false,
            telemetry,
        }
    }

    #[test]
    fn ndjson_has_one_line_per_stream_event() {
        let mut sink = MetricsSink::new(NullSink, Vec::new()).quiet();
        sink.begin(&StreamPlan {
            scenarios: 1,
            replications: 2,
            total: 2,
        });
        let mut counters = CounterSet::new();
        counters.add(Counter::Arrivals, 3);
        sink.record(&record(Some(ReplicationTelemetry {
            counters,
            wall_seconds: 0.25,
        })));
        sink.record(&record(None));
        sink.end(&StreamStats::inline(2, 0.5));
        let (_, out) = sink.into_parts();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"type\":\"begin\""));
        assert!(lines[1].contains("\"counters\":{\"arrivals\":3,"));
        assert!(lines[1].contains("\"wall_seconds\":0.25"));
        assert!(!lines[2].contains("counters"), "unmetered line is bare");
        assert!(lines[3].contains("\"totals\":{\"arrivals\":3,"));
        assert!(lines[3].contains("\"per_worker\":[2]"));
    }

    /// A writer whose bytes survive the sink being dropped.
    #[derive(Debug, Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn failure_lines_are_escaped_and_end_frame_counts_them() {
        let mut sink = MetricsSink::new(NullSink, Vec::new()).quiet();
        sink.begin(&StreamPlan {
            scenarios: 1,
            replications: 2,
            total: 2,
        });
        sink.record(&record(None));
        sink.failure(&crate::session::ReplicationFailure {
            scenario_index: 0,
            scenario_id: 7,
            replication: 1,
            attempts: 2,
            payload: "boom \"quoted\"\nline".to_owned(),
        });
        let mut stats = StreamStats::inline(1, 0.5);
        stats.failed = 1;
        stats.retries = 1;
        sink.end(&stats);
        let (_, out) = sink.into_parts();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("\"type\":\"failure\""));
        assert!(lines[2].contains("\"payload\":\"boom \\\"quoted\\\"\\nline\""));
        assert!(lines[3].contains("\"failed\":1"));
        assert!(lines[3].contains("\"retries\":1"));
        assert!(!lines[3].contains("truncated"));
    }

    #[test]
    fn dropping_before_end_writes_a_truncated_closer() {
        let buf = SharedBuf::default();
        {
            let mut sink = MetricsSink::new(NullSink, buf.clone()).quiet();
            sink.begin(&StreamPlan {
                scenarios: 1,
                replications: 2,
                total: 2,
            });
            sink.record(&record(None));
            // Dropped here without end() — as a panic unwind would.
        }
        let text = buf.text();
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"type\":\"end\""), "{last}");
        assert!(last.contains("\"truncated\":true"), "{last}");
        assert!(last.contains("\"delivered\":1"), "{last}");
    }

    #[test]
    fn into_parts_skips_the_truncated_closer() {
        let buf = SharedBuf::default();
        let sink = MetricsSink::new(NullSink, buf.clone()).quiet();
        let (_, _) = sink.into_parts();
        assert_eq!(buf.text(), "", "disassembly must not write anything");
    }

    #[test]
    fn histogram_json_is_sparse() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        let json = histogram_json(&h);
        assert_eq!(
            json,
            "{\"count\":3,\"sum\":10,\"max\":5,\"buckets\":[[0,1],[3,2]]}"
        );
    }
}
