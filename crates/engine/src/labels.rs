//! The one canonical mapping from verdicts and path classes to short names
//! and phase-diagram glyphs.
//!
//! Artifact emitters, grid renderers, and report tables all spell verdicts
//! the same way; before this module each of them carried its own copy of the
//! mapping. Everything that prints a verdict goes through here.

use markov::PathClass;
use swarm::StabilityVerdict;

/// Canonical short name of a theory verdict.
#[must_use]
pub fn verdict_name(verdict: StabilityVerdict) -> &'static str {
    match verdict {
        StabilityVerdict::PositiveRecurrent => "stable",
        StabilityVerdict::Transient => "transient",
        StabilityVerdict::Borderline => "borderline",
    }
}

/// Canonical short name of a simulated path class.
#[must_use]
pub fn class_name(class: PathClass) -> &'static str {
    match class {
        PathClass::Stable => "stable",
        PathClass::Growing => "growing",
        PathClass::Indeterminate => "indeterminate",
    }
}

/// Glyph for a theory-vs-simulation cell where a stable prediction was
/// confirmed.
pub const GLYPH_STABLE_AGREED: char = '·';
/// Glyph for a confirmed transient prediction.
pub const GLYPH_TRANSIENT_AGREED: char = '#';
/// Glyph for a mismatch or an indeterminate simulation.
pub const GLYPH_MISMATCH: char = '?';
/// Glyph for a point Theorem 1/15 leaves open.
pub const GLYPH_BORDERLINE: char = 'B';

/// The legend line printed above every ASCII phase diagram.
pub const GLYPH_LEGEND: &str = "legend: '·' stable (agreed)   '#' transient (agreed)   \
     '?' mismatch/indeterminate   'B' borderline";

/// The single character used in ASCII phase diagrams for a theory verdict
/// next to a simulated majority class.
#[must_use]
pub fn agreement_glyph(theory: StabilityVerdict, simulated: PathClass) -> char {
    match (theory, simulated) {
        (StabilityVerdict::Borderline, _) => GLYPH_BORDERLINE,
        (StabilityVerdict::PositiveRecurrent, PathClass::Stable) => GLYPH_STABLE_AGREED,
        (StabilityVerdict::Transient, PathClass::Growing) => GLYPH_TRANSIENT_AGREED,
        _ => GLYPH_MISMATCH,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_strings() {
        assert_eq!(verdict_name(StabilityVerdict::PositiveRecurrent), "stable");
        assert_eq!(verdict_name(StabilityVerdict::Transient), "transient");
        assert_eq!(verdict_name(StabilityVerdict::Borderline), "borderline");
        assert_eq!(class_name(PathClass::Stable), "stable");
        assert_eq!(class_name(PathClass::Growing), "growing");
        assert_eq!(class_name(PathClass::Indeterminate), "indeterminate");
    }

    #[test]
    fn glyphs_cover_all_combinations_distinctly() {
        assert_eq!(
            agreement_glyph(StabilityVerdict::PositiveRecurrent, PathClass::Stable),
            GLYPH_STABLE_AGREED
        );
        assert_eq!(
            agreement_glyph(StabilityVerdict::Transient, PathClass::Growing),
            GLYPH_TRANSIENT_AGREED
        );
        assert_eq!(
            agreement_glyph(StabilityVerdict::Borderline, PathClass::Growing),
            GLYPH_BORDERLINE
        );
        assert_eq!(
            agreement_glyph(StabilityVerdict::PositiveRecurrent, PathClass::Growing),
            GLYPH_MISMATCH
        );
        assert_eq!(
            agreement_glyph(StabilityVerdict::Transient, PathClass::Indeterminate),
            GLYPH_MISMATCH
        );
        let glyphs = [
            GLYPH_STABLE_AGREED,
            GLYPH_TRANSIENT_AGREED,
            GLYPH_MISMATCH,
            GLYPH_BORDERLINE,
        ];
        let unique: std::collections::HashSet<char> = glyphs.iter().copied().collect();
        assert_eq!(unique.len(), glyphs.len());
        for glyph in glyphs {
            assert!(GLYPH_LEGEND.contains(glyph));
        }
    }
}
