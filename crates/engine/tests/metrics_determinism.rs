//! The telemetry determinism contract: metering never touches the random
//! streams, so a metered session delivers the *same records and aggregates*
//! as an unmetered one at any worker count — the only difference is the
//! populated `telemetry` side channel.

use engine::{
    AgentScenario, EngineConfig, MetricsSink, ReplicationRecord, ReplicationSink, Session,
    SessionOutput, StreamStats, Workload,
};
use swarm::sim::KernelKind;
use swarm::SwarmParams;
use telemetry::Counter;

fn example1(lambda0: f64) -> SwarmParams {
    SwarmParams::builder(1)
        .seed_rate(1.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(lambda0)
        .build()
        .expect("valid parameters")
}

fn scenarios() -> Vec<AgentScenario> {
    let mut turbo = AgentScenario::new(0, "turbo", example1(0.8));
    turbo.config.kernel = KernelKind::Turbo;
    let event = AgentScenario::new(1, "event", example1(1.5));
    vec![turbo, event]
}

fn session(jobs: usize, metrics: bool) -> Session {
    Session::builder()
        .config(
            EngineConfig::default()
                .with_replications(4)
                .with_horizon(150.0)
                .with_master_seed(0x7E1E)
                .with_jobs(jobs)
                .with_metrics(metrics),
        )
        .workload(Workload::agent(scenarios()))
        .build()
        .expect("valid session")
}

#[derive(Default)]
struct RecordingSink {
    records: Vec<ReplicationRecord>,
    stats: Option<StreamStats>,
}

impl ReplicationSink for RecordingSink {
    fn record(&mut self, record: &ReplicationRecord) {
        self.records.push(*record);
    }
    fn end(&mut self, stats: &StreamStats) {
        self.stats = Some(stats.clone());
    }
}

/// Strips the telemetry side channel so metered and unmetered records can
/// be compared for payload identity.
fn bare(records: &[ReplicationRecord]) -> Vec<ReplicationRecord> {
    records
        .iter()
        .map(|r| ReplicationRecord {
            telemetry: None,
            ..*r
        })
        .collect()
}

#[test]
fn metered_streams_match_unmetered_streams_at_jobs_1_4_8() {
    let mut reference: Option<(Vec<ReplicationRecord>, SessionOutput)> = None;
    for jobs in [1usize, 4, 8] {
        for metrics in [false, true] {
            let mut sink = RecordingSink::default();
            let output = session(jobs, metrics).stream(&mut sink);
            assert_eq!(sink.records.len(), 8);
            // Telemetry presence follows the switch exactly.
            assert!(
                sink.records
                    .iter()
                    .all(|r| r.telemetry.is_some() == metrics),
                "jobs = {jobs}, metrics = {metrics}"
            );
            let payload = (bare(&sink.records), output);
            match &reference {
                None => reference = Some(payload),
                Some(reference) => {
                    assert_eq!(
                        reference.0, payload.0,
                        "records diverged at jobs = {jobs}, metrics = {metrics}"
                    );
                    assert_eq!(
                        reference.1, payload.1,
                        "aggregates diverged at jobs = {jobs}, metrics = {metrics}"
                    );
                }
            }
        }
    }
}

#[test]
fn metered_counters_agree_with_the_records_they_ride_on() {
    let mut sink = RecordingSink::default();
    let _ = session(2, true).stream(&mut sink);
    for record in &sink.records {
        let telemetry = record.telemetry.expect("metrics on");
        assert_eq!(
            telemetry.counters.event_total(),
            record.events,
            "the counter partition must add up to the kernel's event count"
        );
        assert_eq!(
            telemetry.counters.get(Counter::UsefulTransfers),
            record.transfers,
            "useful transfers are the record's transfer count"
        );
        assert!(telemetry.wall_seconds >= 0.0);
    }
}

#[test]
fn metrics_sink_wraps_a_stream_without_changing_it() {
    // The same session streamed bare and through a MetricsSink adapter:
    // the inner sink must see byte-identical records, and the NDJSON side
    // channel must frame the stream correctly.
    let mut bare_sink = RecordingSink::default();
    let bare_out = session(4, true).stream(&mut bare_sink);
    let mut wrapped = MetricsSink::new(RecordingSink::default(), Vec::new()).quiet();
    let wrapped_out = session(4, true).stream(&mut wrapped);
    let (inner, ndjson) = wrapped.into_parts();
    assert_eq!(bare_out, wrapped_out);
    assert_eq!(bare(&bare_sink.records), bare(&inner.records));
    let text = String::from_utf8(ndjson).expect("utf-8 NDJSON");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 10, "begin + 8 replications + end");
    assert!(lines[0].starts_with("{\"type\":\"begin\""));
    assert!(lines[9].starts_with("{\"type\":\"end\""));
    assert!(lines[1].contains("\"counters\":{"));
    let stats = inner.stats.expect("end was called");
    assert!(stats.workers >= 1);
    assert_eq!(stats.per_worker.iter().sum::<u64>(), 8);
    assert_eq!(stats.task_nanos.count(), 8);
}
