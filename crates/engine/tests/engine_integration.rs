//! Integration tests of the replication engine's three contract-level
//! properties: scheduling-independent determinism, √n confidence-interval
//! shrinkage, and agreement with the Theorem 1 classifier.

use engine::{
    artifact, Axis, EngineConfig, GridSpec, PhaseDiagram, Scenario, ScenarioOutcome, Session,
    Workload,
};
use markov::PathClass;
use swarm::{stability, StabilityVerdict, SwarmParams};

/// Runs a CTMC batch through the unified Session API.
fn run_batch(scenarios: &[Scenario], config: &EngineConfig) -> Vec<ScenarioOutcome> {
    Session::builder()
        .config(*config)
        .workload(Workload::ctmc(scenarios.to_vec()))
        .build()
        .expect("valid batch")
        .run()
        .into_ctmc()
        .expect("ctmc workload")
}

/// Runs a grid sweep through the unified Session API.
fn run_grid<F>(spec: &GridSpec, make_params: F, config: &EngineConfig) -> PhaseDiagram
where
    F: Fn(usize, f64, f64, f64) -> Option<SwarmParams>,
{
    Session::builder()
        .config(*config)
        .workload(Workload::grid(spec, make_params))
        .build()
        .expect("valid grid")
        .run()
        .into_grid()
        .expect("grid workload")
}

fn example1(lambda0: f64) -> SwarmParams {
    SwarmParams::builder(1)
        .seed_rate(1.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(lambda0)
        .build()
        .expect("valid parameters")
}

fn boundary_scenarios() -> Vec<Scenario> {
    // Stable, near-boundary, and transient points of Example 1
    // (threshold λ0 < U_s/(1−µ/γ) = 2).
    vec![
        Scenario::new(0, "stable", example1(1.0)),
        Scenario::new(1, "near-boundary", example1(1.9)),
        Scenario::new(2, "transient", example1(4.0)),
    ]
}

fn config(jobs: usize) -> EngineConfig {
    EngineConfig::default()
        .with_replications(6)
        .with_horizon(400.0)
        .with_master_seed(0xD5EED)
        .with_jobs(jobs)
}

#[test]
fn aggregates_are_bit_identical_at_any_thread_count() {
    let scenarios = boundary_scenarios();
    let reference = run_batch(&scenarios, &config(1));
    for jobs in [2, 4, 8] {
        let outcomes = run_batch(&scenarios, &config(jobs));
        assert_eq!(
            reference, outcomes,
            "jobs = {jobs} must reproduce the single-threaded batch bit-for-bit"
        );
    }
}

#[test]
fn artifacts_are_byte_identical_across_jobs() {
    let scenarios = boundary_scenarios();
    let csv_1 = artifact::outcomes_csv(&run_batch(&scenarios, &config(1)));
    let csv_8 = artifact::outcomes_csv(&run_batch(&scenarios, &config(8)));
    assert_eq!(csv_1, csv_8, "CSV identical across --jobs 1 and --jobs 8");

    let json_1 = artifact::outcomes_json(&run_batch(&scenarios, &config(1)));
    let json_8 = artifact::outcomes_json(&run_batch(&scenarios, &config(8)));
    assert_eq!(
        json_1, json_8,
        "JSON identical across --jobs 1 and --jobs 8"
    );

    let spec = GridSpec {
        lambda0: Axis::new("λ0", vec![0.5, 3.0]),
        mu: Axis::fixed("µ", 1.0),
        gamma: Axis::new("γ", vec![2.0, 6.0]),
        pieces: vec![1],
    };
    let make = |_k: usize, _mu: f64, gamma: f64, lambda0: f64| {
        SwarmParams::builder(1)
            .seed_rate(1.0)
            .contact_rate(1.0)
            .seed_departure_rate(gamma)
            .fresh_arrivals(lambda0)
            .build()
            .ok()
    };
    let grid_1 = run_grid(&spec, make, &config(1));
    let grid_8 = run_grid(&spec, make, &config(8));
    assert_eq!(artifact::phase_csv(&grid_1), artifact::phase_csv(&grid_8));
    assert_eq!(artifact::phase_json(&grid_1), artifact::phase_json(&grid_8));
}

#[test]
fn ci_width_shrinks_like_one_over_sqrt_n() {
    // The tail-average of a stable scenario is a genuinely random quantity
    // with finite variance; quadrupling … ×16 the sample size should cut
    // the interval roughly ×4 (we assert a loose bracket to stay robust to
    // the variance also being re-estimated).
    let scenario = vec![Scenario::new(0, "stable", example1(1.2))];
    let base = EngineConfig::default()
        .with_horizon(150.0)
        .with_master_seed(0xC1)
        .with_jobs(0);
    let narrow = run_batch(&scenario, &base.with_replications(8))[0].tail_average;
    let wide = run_batch(&scenario, &base.with_replications(128))[0].tail_average;
    assert_eq!(narrow.n, 8);
    assert_eq!(wide.n, 128);
    assert!(narrow.ci_half_width.is_finite() && narrow.ci_half_width > 0.0);
    assert!(
        wide.ci_half_width < narrow.ci_half_width * 0.6,
        "128-replication interval ({}) should be well under 0.6× the 8-replication one ({})",
        wide.ci_half_width,
        narrow.ci_half_width
    );
}

#[test]
fn thirty_two_replications_agree_with_classify_on_example1() {
    // The satellite acceptance check: a 32-replication engine run on
    // Example 1, away from the boundary on both sides, must reproduce
    // `stability::classify`'s verdicts by majority vote.
    let scenarios = vec![
        Scenario::new(0, "stable", example1(0.8)),
        Scenario::new(1, "transient", example1(4.0)),
    ];
    let config = EngineConfig::default()
        .with_replications(32)
        .with_horizon(600.0)
        .with_master_seed(0xE1)
        .with_jobs(0);
    let outcomes = run_batch(&scenarios, &config);

    assert_eq!(outcomes[0].theory, StabilityVerdict::PositiveRecurrent);
    assert_eq!(
        outcomes[0].theory,
        stability::classify(&scenarios[0].params).verdict
    );
    assert_eq!(outcomes[0].majority, PathClass::Stable);
    assert!(outcomes[0].agrees);
    assert!(
        outcomes[0].agreement >= 0.75,
        "agreement {}",
        outcomes[0].agreement
    );

    assert_eq!(outcomes[1].theory, StabilityVerdict::Transient);
    assert_eq!(outcomes[1].majority, PathClass::Growing);
    assert!(outcomes[1].agrees);
    assert!(
        outcomes[1].agreement >= 0.75,
        "agreement {}",
        outcomes[1].agreement
    );
    // A transient path grows at a strictly positive rate.
    assert!(outcomes[1].tail_slope.mean > 0.0);
}
