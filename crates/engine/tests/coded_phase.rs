//! End-to-end Theorem 15 check: a phase-diagram sweep over the gift
//! fraction `f` at fixed `(q = 2, K = 8)` reproduces the paper's closed-form
//! transition on the coded kernel, and the diagram is bit-identical at any
//! worker count.
//!
//! For GF(2), K = 8 the quoted thresholds are `q/((q−1)K) = 0.25` and
//! `q²/((q−1)²K) = 0.5`: the swept fractions sit at `lo·(1−ε)` and below
//! (must simulate as growing) and at `hi·(1+ε)` and above (must simulate as
//! stable), with ε = 0.5.

use engine::{Axis, CodedGridSpec, CodedPhaseDiagram, EngineConfig, Session, Workload};
use markov::PathClass;
use swarm::coded::theorem15_gift_thresholds;
use swarm::sim::KernelKind;
use swarm::StabilityVerdict;

/// Runs a coded grid sweep through the unified Session API.
fn run_coded_grid(spec: &CodedGridSpec, config: &EngineConfig) -> CodedPhaseDiagram {
    Session::builder()
        .config(*config)
        .workload(Workload::coded(spec))
        .build()
        .expect("valid coded grid")
        .run()
        .into_coded()
        .expect("coded workload")
}

const BELOW: [f64; 2] = [0.0625, 0.125];
const ABOVE: [f64; 2] = [0.75, 0.9];

fn spec() -> CodedGridSpec {
    let fractions = BELOW.iter().chain(ABOVE.iter()).copied().collect();
    CodedGridSpec::headline(Axis::new("f", fractions), vec![2], vec![8], 1.0)
}

fn config(jobs: usize) -> EngineConfig {
    EngineConfig::default()
        .with_replications(3)
        .with_horizon(600.0)
        .with_master_seed(0x7_15)
        .with_jobs(jobs)
}

#[test]
fn theorem15_transition_reproduced_and_bit_identical_across_jobs() {
    let (lo, hi) = theorem15_gift_thresholds(2, 8);
    assert_eq!((lo, hi), (0.25, 0.5));
    assert!(BELOW.iter().all(|&f| f <= lo * 0.5));
    assert!(ABOVE.iter().all(|&f| f >= hi * 1.5));

    let sequential = run_coded_grid(&spec(), &config(1));
    let parallel = run_coded_grid(&spec(), &config(4));
    assert_eq!(
        sequential, parallel,
        "the worker count must never change the numbers"
    );

    for &f in &BELOW {
        let cell = sequential.cell(8, 2, f).expect("cell evaluated");
        assert_eq!(
            cell.outcome.theory,
            StabilityVerdict::Transient,
            "theory below the threshold at f = {f}"
        );
        assert_eq!(
            cell.outcome.majority,
            PathClass::Growing,
            "simulation grows below the threshold at f = {f} \
             (votes: {:?})",
            cell.outcome.votes
        );
        assert!(cell.outcome.agrees);
        assert!(
            cell.outcome.tail_slope.mean > 0.1,
            "transient growth rate at f = {f}: {}",
            cell.outcome.tail_slope.mean
        );
    }
    for &f in &ABOVE {
        let cell = sequential.cell(8, 2, f).expect("cell evaluated");
        assert_eq!(
            cell.outcome.theory,
            StabilityVerdict::PositiveRecurrent,
            "theory above the threshold at f = {f}"
        );
        assert_eq!(
            cell.outcome.majority,
            PathClass::Stable,
            "simulation is stable above the threshold at f = {f} \
             (votes: {:?})",
            cell.outcome.votes
        );
        assert!(cell.outcome.agrees);
    }

    // The rendered diagram shows the flip along the f axis: transient cells
    // left of the gap, stable cells right of it.
    let rendered = sequential.render();
    assert!(
        rendered.contains("# # · ·"),
        "transition visible:\n{rendered}"
    );
    assert_eq!(sequential.mismatches(), 0, "{rendered}");
}

#[test]
fn coded_turbo_reproduces_the_transition_bit_identically_across_jobs() {
    // The golden master for the bitsliced kernel: the same (q = 2, K = 8)
    // sweep with `sim.kernel = CodedTurbo` flips transient → stable across
    // the quoted thresholds (0.25, 0.5), and the whole diagram is
    // bit-identical at 1, 4, and 8 workers — the engine's determinism
    // contract extends to the lazy-peer kernel.
    let (lo, hi) = theorem15_gift_thresholds(2, 8);
    assert_eq!((lo, hi), (0.25, 0.5));
    let turbo_spec = CodedGridSpec {
        sim: swarm::sim::AgentConfig {
            kernel: KernelKind::CodedTurbo,
            ..Default::default()
        },
        ..spec()
    };
    let sequential = run_coded_grid(&turbo_spec, &config(1));
    let four = run_coded_grid(&turbo_spec, &config(4));
    let eight = run_coded_grid(&turbo_spec, &config(8));
    assert_eq!(sequential, four, "jobs must never change the numbers");
    assert_eq!(sequential, eight, "jobs must never change the numbers");

    for &f in &BELOW {
        let cell = sequential.cell(8, 2, f).expect("cell evaluated");
        assert_eq!(cell.outcome.theory, StabilityVerdict::Transient);
        assert_eq!(
            cell.outcome.majority,
            PathClass::Growing,
            "coded-turbo grows below the threshold at f = {f} \
             (votes: {:?})",
            cell.outcome.votes
        );
        assert!(cell.outcome.agrees);
    }
    for &f in &ABOVE {
        let cell = sequential.cell(8, 2, f).expect("cell evaluated");
        assert_eq!(cell.outcome.theory, StabilityVerdict::PositiveRecurrent);
        assert_eq!(
            cell.outcome.majority,
            PathClass::Stable,
            "coded-turbo is stable above the threshold at f = {f} \
             (votes: {:?})",
            cell.outcome.votes
        );
        assert!(cell.outcome.agrees);
    }
    assert_eq!(sequential.mismatches(), 0, "{}", sequential.render());
}

#[test]
fn coded_turbo_sweep_rejects_non_binary_fields_at_build() {
    // q ≠ 2 cannot run on the bitsliced kernel; the session build surfaces
    // the typed error instead of silently skipping or mis-simulating.
    let turbo_spec = CodedGridSpec {
        sim: swarm::sim::AgentConfig {
            kernel: KernelKind::CodedTurbo,
            ..Default::default()
        },
        ..CodedGridSpec::headline(Axis::fixed("f", 0.75), vec![8], vec![8], 1.0)
    };
    let err = Session::builder()
        .config(config(1))
        .workload(Workload::coded(&turbo_spec))
        .build()
        .expect_err("GF(8) must be rejected by the coded-turbo kernel");
    assert!(
        err.to_string().contains("GF(8)"),
        "error names the offending field order: {err}"
    );
}
