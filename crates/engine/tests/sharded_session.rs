//! Session-level contract of intra-replication sharding and the non-finite
//! rejection path it motivated.
//!
//! The core crate pins the sharded driver's own guarantees
//! (`crates/core/tests/sharded_distributional.rs`); this suite pins what
//! the *engine* adds on top:
//!
//! * a sharded scenario streams bit-identical records at any `--jobs`
//!   value for a fixed `(seed, shards, sync_window)`, metered or not,
//!   and the merged telemetry satisfies the partition identities;
//! * an invalid sharding setup (a non-turbo kernel) is rejected at
//!   `Session::build` time, before any replication runs;
//! * chaos panics inside a sharded replication surface through the
//!   quarantine machinery as typed, ordered failures, with the survivors
//!   bit-identical to a fault-free run;
//! * a replication classified with a non-finite statistic (the
//!   `FaultKind::Nan` chaos) becomes a typed failure counted in
//!   [`StreamStats::non_finite`] under quarantine — never a silently-NaN
//!   aggregate — and aborts loudly under fail-fast.

use engine::{
    AgentScenario, EngineConfig, FailurePolicy, FaultPlan, ReplicationFailure, ReplicationRecord,
    ReplicationSink, Session, StreamStats, Workload,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use swarm::sim::KernelKind;
use swarm::SwarmParams;
use telemetry::Counter;

fn example1(lambda0: f64) -> SwarmParams {
    SwarmParams::builder(2)
        .seed_rate(1.5)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(lambda0)
        .build()
        .expect("valid parameters")
}

/// One sharded turbo scenario (4 shards) and one unsharded companion.
fn scenarios() -> Vec<AgentScenario> {
    let mut sharded = AgentScenario::new(0, "sharded", example1(1.2));
    sharded.config.kernel = KernelKind::Turbo;
    sharded.shards = Some(4);
    sharded.sync_window = Some(0.5);
    let mut plain = AgentScenario::new(1, "plain", example1(0.8));
    plain.config.kernel = KernelKind::Turbo;
    vec![sharded, plain]
}

fn config(jobs: usize) -> EngineConfig {
    EngineConfig::default()
        .with_replications(4)
        .with_horizon(120.0)
        .with_master_seed(0x005A_ADED)
        .with_jobs(jobs)
}

#[derive(Default)]
struct Collector {
    records: Vec<ReplicationRecord>,
    failures: Vec<ReplicationFailure>,
    stats: Option<StreamStats>,
}

impl ReplicationSink for Collector {
    fn record(&mut self, record: &ReplicationRecord) {
        self.records.push(*record);
    }
    fn failure(&mut self, failure: &ReplicationFailure) {
        self.failures.push(failure.clone());
    }
    fn end(&mut self, stats: &StreamStats) {
        self.stats = Some(stats.clone());
    }
}

fn stream(
    jobs: usize,
    metrics: bool,
    policy: FailurePolicy,
    faults: Option<FaultPlan>,
) -> Collector {
    let mut builder = Session::builder()
        .config(
            config(jobs)
                .with_metrics(metrics)
                .with_failure_policy(policy),
        )
        .workload(Workload::agent(scenarios()));
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let mut sink = Collector::default();
    builder.build().expect("valid session").stream(&mut sink);
    sink
}

/// Strips the telemetry side channel for payload comparison.
fn bare(records: &[ReplicationRecord]) -> Vec<ReplicationRecord> {
    records
        .iter()
        .map(|r| ReplicationRecord {
            telemetry: None,
            ..*r
        })
        .collect()
}

#[test]
fn sharded_scenarios_stream_bit_identically_at_any_jobs() {
    // jobs > tasks gives each replication surplus workers for its shard
    // segments; jobs = 1 runs everything inline. Same bytes either way.
    let reference = stream(1, false, FailurePolicy::FailFast, None);
    assert_eq!(reference.records.len(), 8);
    for jobs in [2, 4, 16] {
        for metrics in [false, true] {
            let run = stream(jobs, metrics, FailurePolicy::FailFast, None);
            assert_eq!(
                bare(&run.records),
                bare(&reference.records),
                "jobs = {jobs}, metrics = {metrics}"
            );
        }
    }
}

#[test]
fn sharded_telemetry_merges_shard_counters_into_the_partition_identities() {
    let run = stream(2, true, FailurePolicy::FailFast, None);
    for record in &run.records {
        let telemetry = record.telemetry.as_ref().expect("metered record");
        let c = &telemetry.counters;
        assert_eq!(
            c.event_total(),
            record.events,
            "scenario {} replication {}: arrivals + contacts + departure \
             events must partition the merged event total",
            record.scenario_id,
            record.replication,
        );
        assert_eq!(
            c.get(Counter::Contacts),
            c.get(Counter::UsefulTransfers) + c.get(Counter::UselessContacts),
        );
    }
}

#[test]
fn a_sharded_non_turbo_scenario_is_rejected_at_build_time() {
    let mut scenario = AgentScenario::new(0, "bad", example1(1.0));
    scenario.config.kernel = KernelKind::EventDriven;
    scenario.shards = Some(4);
    let error = Session::builder()
        .config(config(1))
        .workload(Workload::agent(vec![scenario]))
        .build()
        .expect_err("the parity kernels cannot shard");
    let message = error.to_string();
    assert!(
        message.contains("turbo"),
        "the error names the kernel constraint: {message}"
    );
}

#[test]
fn chaos_panics_in_a_sharded_scenario_quarantine_as_typed_ordered_failures() {
    let fault_free = stream(1, false, FailurePolicy::FailFast, None);
    let plan = FaultPlan::new().panic_at(0, 1).panic_at(0, 3);
    for jobs in [1, 4] {
        let run = stream(
            jobs,
            false,
            FailurePolicy::Quarantine {
                max_failures: u32::MAX,
            },
            Some(plan.clone()),
        );
        // Survivors are the fault-free records minus the killed keys, in
        // the same (scenario, replication) order.
        let expected: Vec<ReplicationRecord> = fault_free
            .records
            .iter()
            .filter(|r| !(r.scenario_id == 0 && (r.replication == 1 || r.replication == 3)))
            .copied()
            .collect();
        assert_eq!(run.records, expected, "jobs = {jobs}");
        assert_eq!(run.failures.len(), 2, "jobs = {jobs}");
        for (failure, replication) in run.failures.iter().zip([1u32, 3]) {
            assert_eq!(failure.scenario_id, 0);
            assert_eq!(failure.replication, replication);
            assert!(failure.payload.contains("injected fault"));
        }
        assert_eq!(run.stats.as_ref().expect("stream ended").failed, 2);
    }
}

#[test]
fn a_nan_classified_replication_is_a_typed_failure_not_a_poisoned_aggregate() {
    let fault_free = stream(1, false, FailurePolicy::FailFast, None);
    let plan = FaultPlan::new().nan_at(1, 2);
    for jobs in [1, 3] {
        let run = stream(
            jobs,
            false,
            FailurePolicy::Quarantine {
                max_failures: u32::MAX,
            },
            Some(plan.clone()),
        );
        // The poisoned replication is rejected, not aggregated: survivors
        // are bit-identical to the fault-free run minus that one record.
        let expected: Vec<ReplicationRecord> = fault_free
            .records
            .iter()
            .filter(|r| !(r.scenario_id == 1 && r.replication == 2))
            .copied()
            .collect();
        assert_eq!(run.records, expected, "jobs = {jobs}");
        let [failure] = run.failures.as_slice() else {
            panic!("exactly one typed failure, got {:?}", run.failures);
        };
        assert_eq!((failure.scenario_id, failure.replication), (1, 2));
        assert!(
            failure.payload.starts_with("non-finite statistic"),
            "payload: {}",
            failure.payload
        );
        let stats = run.stats.as_ref().expect("stream ended");
        assert_eq!(stats.failed, 1);
        assert_eq!(
            stats.non_finite, 1,
            "the rejection is visible in the end-frame accounting"
        );
        // No surviving record carries a non-finite statistic.
        for record in &run.records {
            assert!(record.tail_slope.is_finite() && record.tail_average.is_finite());
        }
    }
}

#[test]
fn a_nan_classified_replication_aborts_loudly_under_failfast() {
    let plan = FaultPlan::new().nan_at(1, 2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        stream(1, false, FailurePolicy::FailFast, Some(plan));
    }));
    let payload = result.expect_err("fail-fast must abort on a non-finite statistic");
    let message = payload
        .downcast_ref::<String>()
        .expect("string panic payload");
    assert!(
        message.contains("non-finite statistic"),
        "payload: {message}"
    );
}
