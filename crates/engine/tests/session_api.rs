//! Contract tests of the unified [`Session`] API: builder misuse comes back
//! as typed errors, `stream(sink)` and `run()` are bit-identical at any
//! worker count, records arrive in deterministic order, and streamed
//! aggregation keeps its memory footprint independent of the replication
//! count (the bounded reorder window).

use engine::{
    EngineConfig, Error, ReplicationRecord, ReplicationSink, Scenario, Session, SessionOutput,
    StreamPlan, StreamStats, Workload,
};
use swarm::{SwarmError, SwarmParams};

fn example1(lambda0: f64) -> SwarmParams {
    SwarmParams::builder(1)
        .seed_rate(1.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(lambda0)
        .build()
        .expect("valid parameters")
}

fn config(jobs: usize) -> EngineConfig {
    EngineConfig::default()
        .with_replications(5)
        .with_horizon(250.0)
        .with_master_seed(0x5E55)
        .with_jobs(jobs)
}

/// Records everything it sees, for order/identity assertions.
#[derive(Default)]
struct RecordingSink {
    plan: Option<StreamPlan>,
    records: Vec<ReplicationRecord>,
    stats: Option<StreamStats>,
}

impl ReplicationSink for RecordingSink {
    fn begin(&mut self, plan: &StreamPlan) {
        self.plan = Some(*plan);
    }
    fn record(&mut self, record: &ReplicationRecord) {
        self.records.push(*record);
    }
    fn end(&mut self, stats: &StreamStats) {
        self.stats = Some(stats.clone());
    }
}

/// Drops every record on the floor, keeping only O(1) counters — the
/// million-replication aggregation consumer.
#[derive(Default)]
struct DroppingSink {
    seen: u64,
    in_order: bool,
    last: Option<(usize, u32)>,
}

impl DroppingSink {
    fn new() -> Self {
        DroppingSink {
            seen: 0,
            in_order: true,
            last: None,
        }
    }
}

impl ReplicationSink for DroppingSink {
    fn record(&mut self, record: &ReplicationRecord) {
        let key = (record.scenario_index, record.replication);
        if let Some(last) = self.last {
            self.in_order &= last < key;
        }
        self.last = Some(key);
        self.seen += 1;
    }
}

// ---------------------------------------------------------------------
// Builder misuse and validation
// ---------------------------------------------------------------------

#[test]
fn builder_without_a_workload_is_a_typed_error() {
    let error = Session::builder()
        .config(config(1))
        .build()
        .expect_err("no workload");
    assert_eq!(error, Error::MissingWorkload);
}

#[test]
fn duplicate_stream_keys_are_rejected_at_build_time() {
    let scenarios = vec![
        Scenario::new(3, "a", example1(0.5)),
        Scenario::new(3, "b", example1(1.5)),
    ];
    let error = Session::builder()
        .config(config(1))
        .workload(Workload::ctmc(scenarios))
        .build()
        .expect_err("duplicate ids");
    assert_eq!(error, Error::DuplicateScenarioId(3));
}

#[test]
fn invalid_configurations_are_rejected_at_build_time() {
    let workload = || Workload::ctmc(vec![Scenario::new(0, "x", example1(1.0))]);
    let bad_horizon = EngineConfig {
        horizon: 0.0,
        ..EngineConfig::default()
    };
    let error = Session::builder()
        .config(bad_horizon)
        .workload(workload())
        .build()
        .expect_err("zero horizon");
    assert!(matches!(error, Error::InvalidConfig(_)), "{error:?}");

    let bad_confidence = EngineConfig {
        confidence: 1.0,
        ..EngineConfig::default()
    };
    let error = Session::builder()
        .config(bad_confidence)
        .workload(workload())
        .build()
        .expect_err("confidence 1.0");
    assert!(matches!(error, Error::InvalidConfig(_)), "{error:?}");
}

#[test]
fn invalid_agent_scenarios_are_rejected_with_their_label() {
    let mut scenario = engine::AgentScenario::new(0, "telepaths", example1(1.0));
    scenario.policy = "telepathic".into();
    let error = Session::builder()
        .config(config(1))
        .workload(Workload::agent(vec![scenario]))
        .build()
        .expect_err("unknown policy");
    match &error {
        Error::Scenario { label, source } => {
            assert_eq!(label, "telepaths");
            assert!(matches!(source, SwarmError::InvalidParameter(_)));
        }
        other => panic!("expected a scenario error, got {other:?}"),
    }
    assert!(error.to_string().contains("telepathic"), "{error}");
}

// ---------------------------------------------------------------------
// Streaming vs batch bit-identity
// ---------------------------------------------------------------------

fn boundary_session(jobs: usize) -> Session {
    let scenarios = vec![
        Scenario::new(0, "stable", example1(1.0)),
        Scenario::new(1, "near-boundary", example1(1.9)),
        Scenario::new(2, "transient", example1(4.0)),
    ];
    Session::builder()
        .config(config(jobs))
        .workload(Workload::ctmc(scenarios))
        .build()
        .expect("valid session")
}

#[test]
fn stream_and_run_are_bit_identical_at_jobs_1_4_8() {
    let reference = boundary_session(1).run();
    let mut reference_records: Option<Vec<ReplicationRecord>> = None;
    for jobs in [1usize, 4, 8] {
        let session = boundary_session(jobs);
        let batch = session.run();
        let mut sink = RecordingSink::default();
        let streamed = session.stream(&mut sink);
        assert_eq!(batch, reference, "run() at jobs = {jobs}");
        assert_eq!(streamed, reference, "stream() at jobs = {jobs}");

        // The record sequence itself is deterministic and jobs-independent.
        let plan = sink.plan.expect("begin was called");
        assert_eq!(plan.scenarios, 3);
        assert_eq!(plan.replications, 5);
        assert_eq!(plan.total, 15);
        assert_eq!(sink.records.len(), 15);
        let order: Vec<(usize, u32)> = sink
            .records
            .iter()
            .map(|r| (r.scenario_index, r.replication))
            .collect();
        let expected: Vec<(usize, u32)> = (0..3usize)
            .flat_map(|s| (0..5u32).map(move |r| (s, r)))
            .collect();
        assert_eq!(order, expected, "delivery order at jobs = {jobs}");
        match &reference_records {
            None => reference_records = Some(sink.records),
            Some(reference) => {
                assert_eq!(reference, &sink.records, "record payloads at jobs = {jobs}")
            }
        }
        let stats = sink.stats.expect("end was called");
        assert_eq!(stats.delivered, 15);
    }
}

#[test]
fn agent_streams_are_bit_identical_across_jobs_too() {
    let scenarios = vec![
        engine::AgentScenario::new(0, "stable", example1(0.6)),
        engine::AgentScenario::new(1, "transient", example1(4.0)),
    ];
    let build = |jobs: usize| {
        Session::builder()
            .config(config(jobs).with_replications(3))
            .workload(Workload::agent(scenarios.clone()))
            .build()
            .expect("valid session")
    };
    let mut sink1 = RecordingSink::default();
    let mut sink8 = RecordingSink::default();
    let out1 = build(1).stream(&mut sink1);
    let out8 = build(8).stream(&mut sink8);
    assert_eq!(out1, out8);
    assert_eq!(sink1.records, sink8.records);
    // Agent records carry simulator counters.
    assert!(sink1.records.iter().all(|r| r.events > 0));
    assert_eq!(out1, build(4).run(), "run() matches stream() output");
}

// ---------------------------------------------------------------------
// Bounded-memory streaming
// ---------------------------------------------------------------------

#[test]
fn streamed_aggregation_memory_is_independent_of_replication_count() {
    // The same scenario at 40 and at 400 replications: the reorder buffer's
    // high-water mark is capped by the jobs-derived window both times —
    // nothing accumulates with the replication count. (Per-replication
    // results are dropped by the sink; only the running Welford aggregates
    // and the window-bounded reorder buffer ever hold them.)
    let mut high_water = Vec::new();
    for replications in [40u32, 400] {
        let session = Session::builder()
            .config(
                EngineConfig::default()
                    .with_replications(replications)
                    .with_horizon(40.0)
                    .with_master_seed(9)
                    .with_jobs(4),
            )
            .workload(Workload::ctmc(vec![Scenario::new(
                0,
                "probe",
                example1(1.0),
            )]))
            .build()
            .expect("valid session");
        let mut sink = DroppingSink::new();
        let mut recorder = RecordingSink::default();
        let output = session.stream(&mut sink);
        // Re-stream into a recorder only to read the stats struct shape.
        let _ = session.stream(&mut recorder);
        let stats = recorder.stats.expect("end was called");
        assert_eq!(sink.seen, u64::from(replications));
        assert!(sink.in_order, "records arrived out of order");
        assert!(
            stats.max_pending < stats.reorder_window,
            "pending {} must stay below the window {}",
            stats.max_pending,
            stats.reorder_window
        );
        high_water.push(stats.reorder_window);
        let outcomes = output.into_ctmc().expect("ctmc workload");
        assert_eq!(outcomes[0].votes.total(), replications);
        assert_eq!(outcomes[0].tail_average.n, u64::from(replications));
    }
    // The window (the hard memory cap) is the same regardless of the
    // replication count: it depends on the worker count only.
    assert_eq!(high_water[0], high_water[1]);
}

#[test]
fn empty_workloads_stream_nothing_and_return_empty_output() {
    let session = Session::builder()
        .config(config(4))
        .workload(Workload::ctmc(Vec::new()))
        .build()
        .expect("valid session");
    let mut sink = RecordingSink::default();
    match session.stream(&mut sink) {
        SessionOutput::Ctmc(outcomes) => assert!(outcomes.is_empty()),
        other => panic!("expected a CTMC output, got {other:?}"),
    }
    assert_eq!(sink.plan.expect("begin").total, 0);
    assert!(sink.records.is_empty());
    assert_eq!(sink.stats.expect("end").delivered, 0);
}
