//! Chaos suite: the engine's fault-tolerance contract under injected
//! failures.
//!
//! Every test drives the public `Session` API with a deterministic
//! [`FaultPlan`] and asserts the two properties the fault layer guarantees:
//!
//! 1. **Survivor determinism** — replications that don't fail are
//!    bit-identical to a fault-free run, at any `jobs` value, under every
//!    policy (faults are keyed by stream key, and a retried replication
//!    re-runs on the same derived stream).
//! 2. **Clean aborts** — when the session does abort (`FailFast`, an
//!    exhausted quarantine budget, a panicking sink), the panic that
//!    surfaces is the original payload, not a poisoned-mutex cascade, and
//!    every worker (including ones blocked on the reorder-window condvar)
//!    terminates.
//!
//! The checkpoint tests simulate a crash by panicking mid-delivery and then
//! resume from the surviving checkpoint file, asserting the combined run is
//! byte-identical to an uninterrupted one.

use engine::{
    artifact, EngineConfig, Error, FailurePolicy, FaultPlan, ReplicationFailure, ReplicationRecord,
    ReplicationSink, Scenario, ScenarioOutcome, Session, StreamPlan, StreamStats, Workload,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use swarm::SwarmParams;

/// Collects everything a stream delivers, for byte-level comparison.
#[derive(Debug, Default)]
struct Collector {
    plan: Option<StreamPlan>,
    records: Vec<ReplicationRecord>,
    failures: Vec<ReplicationFailure>,
    stats: Option<StreamStats>,
}

impl ReplicationSink for Collector {
    fn begin(&mut self, plan: &StreamPlan) {
        self.plan = Some(*plan);
    }
    fn record(&mut self, record: &ReplicationRecord) {
        self.records.push(*record);
    }
    fn failure(&mut self, failure: &ReplicationFailure) {
        self.failures.push(failure.clone());
    }
    fn end(&mut self, stats: &StreamStats) {
        self.stats = Some(stats.clone());
    }
}

/// A sink that panics while receiving its `n`-th record (0-based), after
/// forwarding the earlier ones — a deterministic stand-in for a crash in
/// downstream consumer code, positioned in delivery order so it fires at
/// the same frontier at any `jobs` value.
struct PanicAt {
    n: usize,
    inner: Collector,
}

impl ReplicationSink for PanicAt {
    fn begin(&mut self, plan: &StreamPlan) {
        self.inner.begin(plan);
    }
    fn record(&mut self, record: &ReplicationRecord) {
        if self.inner.records.len() == self.n {
            panic!("sink crashed at record {}", self.n);
        }
        self.inner.record(record);
    }
    fn failure(&mut self, failure: &ReplicationFailure) {
        self.inner.failure(failure);
    }
    fn end(&mut self, stats: &StreamStats) {
        self.inner.end(stats);
    }
}

fn example1(lambda0: f64) -> SwarmParams {
    SwarmParams::builder(1)
        .seed_rate(1.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(lambda0)
        .build()
        .expect("valid parameters")
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(0, "stable", example1(1.0)),
        Scenario::new(1, "transient", example1(4.0)),
    ]
}

fn config(jobs: usize, policy: FailurePolicy) -> EngineConfig {
    EngineConfig::default()
        .with_replications(6)
        .with_horizon(150.0)
        .with_master_seed(0xC1A05)
        .with_jobs(jobs)
        .with_failure_policy(policy)
}

fn session(jobs: usize, policy: FailurePolicy, faults: Option<FaultPlan>) -> Session {
    let mut builder = Session::builder()
        .config(config(jobs, policy))
        .workload(Workload::ctmc(scenarios()));
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    builder.build().expect("valid session")
}

fn baseline(jobs: usize) -> (Vec<ScenarioOutcome>, Collector) {
    let mut sink = Collector::default();
    let outcomes = session(jobs, FailurePolicy::FailFast, None)
        .stream(&mut sink)
        .into_ctmc()
        .expect("ctmc workload");
    (outcomes, sink)
}

/// A per-test temporary file path (the suite runs tests in parallel, so
/// paths embed the test name).
fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("engine-chaos-{}-{name}.ckpt", std::process::id()))
}

#[test]
fn quarantine_survivors_are_bit_identical_to_a_fault_free_run() {
    let (_, fault_free) = baseline(1);
    let killed = [(0u64, 2u32), (1, 5)];
    let plan = FaultPlan::new().panic_at(0, 2).panic_at(1, 5);

    let mut reference: Option<Vec<ScenarioOutcome>> = None;
    for jobs in [1, 4, 8] {
        let mut sink = Collector::default();
        let outcomes = session(
            jobs,
            FailurePolicy::Quarantine {
                max_failures: u32::MAX,
            },
            Some(plan.clone()),
        )
        .stream(&mut sink)
        .into_ctmc()
        .expect("ctmc workload");

        // The survivors are exactly the fault-free records minus the two
        // killed stream keys, in the same order.
        let expected: Vec<ReplicationRecord> = fault_free
            .records
            .iter()
            .filter(|r| !killed.contains(&(r.scenario_id, r.replication)))
            .copied()
            .collect();
        assert_eq!(sink.records, expected, "jobs = {jobs}");

        // The failures surface with their stream keys and payloads.
        assert_eq!(sink.failures.len(), 2, "jobs = {jobs}");
        for (failure, key) in sink.failures.iter().zip(killed) {
            assert_eq!((failure.scenario_id, failure.replication), key);
            assert_eq!(failure.attempts, 1);
            assert!(failure.payload.contains("injected fault"));
        }

        // Accounting: the end frame and the aggregates agree.
        let stats = sink.stats.expect("stream ended");
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.delivered, fault_free.records.len() as u64 - 2);
        assert_eq!(outcomes[0].failed_replications, 1);
        assert_eq!(outcomes[1].failed_replications, 1);

        // And the whole aggregate is identical across worker counts.
        match &reference {
            None => reference = Some(outcomes),
            Some(reference) => assert_eq!(reference, &outcomes, "jobs = {jobs}"),
        }
    }
}

#[test]
fn retry_converges_on_transient_faults_and_matches_the_fault_free_run() {
    let (fault_free_outcomes, fault_free) = baseline(1);
    // Two replications fail twice each before succeeding: Retry with three
    // attempts absorbs them completely.
    let plan = FaultPlan::new().transient_at(0, 1, 2).transient_at(1, 4, 2);
    for jobs in [1, 4] {
        let mut sink = Collector::default();
        let outcomes = session(
            jobs,
            FailurePolicy::Retry {
                attempts: 3,
                backoff_ms: 0,
            },
            Some(plan.clone()),
        )
        .stream(&mut sink)
        .into_ctmc()
        .expect("ctmc workload");
        // Byte-identical to the fault-free run: same records, same
        // aggregates, no failures — the retried attempts reuse the same
        // derived streams.
        assert_eq!(sink.records, fault_free.records, "jobs = {jobs}");
        assert_eq!(outcomes, fault_free_outcomes, "jobs = {jobs}");
        assert!(sink.failures.is_empty());
        let stats = sink.stats.expect("stream ended");
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.retries, 4, "two faults × two extra attempts each");
    }
}

#[test]
fn retry_exhaustion_quarantines_with_the_attempt_count() {
    let plan = FaultPlan::new().panic_at(0, 3);
    let mut sink = Collector::default();
    session(
        2,
        FailurePolicy::Retry {
            attempts: 2,
            backoff_ms: 0,
        },
        Some(plan),
    )
    .stream(&mut sink);
    assert_eq!(sink.failures.len(), 1);
    assert_eq!(sink.failures[0].attempts, 2);
    assert_eq!(sink.stats.expect("stream ended").retries, 1);
}

#[test]
fn failfast_still_aborts_with_the_original_panic_payload() {
    let plan = FaultPlan::new().panic_at(1, 0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = session(2, FailurePolicy::FailFast, Some(plan)).run();
    }));
    let payload = result.expect_err("the session must abort under FailFast");
    let message = payload
        .downcast_ref::<String>()
        .expect("string panic payload");
    assert!(
        message.contains("injected fault: panic at scenario 1 replication 0"),
        "payload: {message}"
    );
}

#[test]
fn exceeding_the_quarantine_budget_aborts() {
    let plan = FaultPlan::new().panic_at(0, 1).panic_at(0, 4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = session(2, FailurePolicy::Quarantine { max_failures: 1 }, Some(plan)).run();
    }));
    let payload = result.expect_err("two failures exceed a budget of one");
    let message = payload
        .downcast_ref::<String>()
        .expect("string panic payload");
    assert!(message.contains("quarantine budget"), "payload: {message}");
}

/// A panicking sink aborts the whole pipeline cleanly: workers that are
/// mid-task or blocked on the reorder-window condvar all wake up and
/// terminate, and the panic that surfaces is the sink's own payload — not
/// a `PoisonError` unwrap from a worker that found the frontier mutex
/// poisoned. (If shutdown deadlocked, this test would hang rather than
/// fail.)
#[test]
fn sink_panic_terminates_blocked_workers_without_poison_cascades() {
    // Stalls on later replications keep several workers busy or parked at
    // the reorder window while the delivery thread unwinds.
    let plan = FaultPlan::new()
        .stall_at(1, 1, 30)
        .stall_at(1, 2, 30)
        .stall_at(1, 3, 30);
    let mut sink = PanicAt {
        n: 2,
        inner: Collector::default(),
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        session(8, FailurePolicy::FailFast, Some(plan)).stream(&mut sink);
    }));
    let payload = result.expect_err("the sink panic must abort the session");
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .expect("string panic payload");
    assert!(
        message.contains("sink crashed at record 2"),
        "the surfaced panic must be the sink's own, got: {message}"
    );
    // The records delivered before the crash are the fault-free prefix.
    let (_, fault_free) = baseline(1);
    assert_eq!(sink.inner.records, fault_free.records[..2]);
}

#[test]
fn a_crashed_run_resumes_from_its_checkpoint_byte_identically() {
    let (uninterrupted, fault_free) = baseline(1);
    let uninterrupted_csv = artifact::outcomes_csv(&uninterrupted);
    let uninterrupted_json = artifact::outcomes_json(&uninterrupted);

    for jobs in [1, 4, 8] {
        let path = temp_path(&format!("resume-{jobs}"));
        let _ = std::fs::remove_file(&path);

        // "Crash" deterministically while delivering the 9th record: the
        // checkpoint file then holds the 8-record completed prefix (the
        // crashing record is never checkpointed), at any worker count.
        let mut crashing = PanicAt {
            n: 8,
            inner: Collector::default(),
        };
        let mut builder = Session::builder()
            .config(config(jobs, FailurePolicy::FailFast))
            .workload(Workload::ctmc(scenarios()))
            .checkpoint(engine::CheckpointSpec::new(&path));
        let session = builder.build().expect("valid session");
        let crash = catch_unwind(AssertUnwindSafe(|| {
            session.stream(&mut crashing);
        }));
        assert!(crash.is_err(), "the run must crash");
        assert!(path.exists(), "the checkpoint must survive the crash");

        // Resume with an identically-configured session and finish.
        let mut resumed_sink = Collector::default();
        builder = Session::builder()
            .config(config(jobs, FailurePolicy::FailFast))
            .workload(Workload::ctmc(scenarios()));
        let resumed = builder
            .build()
            .expect("valid session")
            .resume_stream(&path, &mut resumed_sink)
            .expect("resume from a matching checkpoint")
            .into_ctmc()
            .expect("ctmc workload");

        // The combined run is byte-identical to the uninterrupted one:
        // same aggregates, same artifact bytes, and the resumed tail picks
        // up exactly where the checkpoint left off.
        assert_eq!(resumed, uninterrupted, "jobs = {jobs}");
        assert_eq!(artifact::outcomes_csv(&resumed), uninterrupted_csv);
        assert_eq!(artifact::outcomes_json(&resumed), uninterrupted_json);
        assert_eq!(resumed_sink.records, fault_free.records[8..]);

        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn resuming_under_a_different_configuration_is_a_typed_error() {
    let path = temp_path("digest");
    let _ = std::fs::remove_file(&path);
    // A complete run leaves a final checkpoint behind.
    let _ = Session::builder()
        .config(config(1, FailurePolicy::FailFast))
        .workload(Workload::ctmc(scenarios()))
        .checkpoint(engine::CheckpointSpec::new(&path))
        .build()
        .expect("valid session")
        .run();
    assert!(path.exists());

    // A session with a different master seed must refuse the file.
    let other = Session::builder()
        .config(config(1, FailurePolicy::FailFast).with_master_seed(0xBAD_5EED))
        .workload(Workload::ctmc(scenarios()))
        .build()
        .expect("valid session");
    match other.resume(&path) {
        Err(Error::CheckpointMismatch { .. }) => {}
        other => panic!("expected CheckpointMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
